package sim

import (
	"flag"
	"strings"
	"testing"

	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/op"
	"logicallog/internal/stable"
)

var (
	faultConfig = flag.String("fault.config", "", "explorer config name for TestCrashScheduleReplay")
	faultToken  = flag.String("fault.token", "", "fault plan token for TestCrashScheduleReplay")
)

// TestCrashScheduleExplorer is the exhaustive crash-schedule sweep: for each
// explorer configuration, count the scripted workload's I/O boundaries,
// then crash (or tear, flip, reorder, EIO) at every one of them and demand
// oracle equivalence and stable-state explainability after recovery.
func TestCrashScheduleExplorer(t *testing.T) {
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for _, cfg := range ExplorerConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Explore(cfg, stride, nil)
			if err != nil {
				t.Fatal(err)
			}
			total := rep.WALBoundaries + rep.StableBoundaries
			if total <= 100 {
				t.Errorf("only %d I/O boundaries (%d WAL + %d stable); the script no longer exercises the fault space",
					total, rep.WALBoundaries, rep.StableBoundaries)
			}
			t.Logf("%s: %d schedules over %d WAL + %d stable + %d stream boundaries",
				cfg.Name, rep.Schedules, rep.WALBoundaries, rep.StableBoundaries, rep.StreamBoundaries)
			if rep.StreamBoundaries <= 0 {
				t.Error("no stream-merge boundaries counted; the walstream channel is not wired")
			}
			for _, f := range rep.Failures {
				t.Errorf("schedule failed: %v", f)
			}
		})
	}
}

// buggyRogue simulates a buggy cache policy that violates the write-graph
// flush order behind the manager's back at step 60.  On two private objects
// (the script never touches them, so nothing later masks the corruption) it
// logs A: rogue1 <- copy(rogue0) then B: rogue0 <- append(rogue0, ...) —
// A reads what B overwrites, so the installation graph's read-write edge
// A -> B demands A's result reach the stable store no later than B's — then
// flushes B's rogue0 directly while A's rogue1 stays unflushed: exactly the
// Figure 1 order the graph forbids.  Any crash in that window makes A's
// redo read the future rogue0, diverging from the oracle, and leaves a
// stable state no prefix set explains.
func buggyRogue(step int, eng *core.Engine) error {
	if step != 60 {
		return nil
	}
	if err := eng.Execute(op.NewCreate("rogue0", []byte{0xAA, 0xBB})); err != nil {
		return err
	}
	if err := eng.Execute(op.NewCreate("rogue1", []byte{0x11})); err != nil {
		return err
	}
	a := op.NewLogical(op.FuncCopy, []byte("rogue1"),
		[]op.ObjectID{"rogue0"}, []op.ObjectID{"rogue1"})
	if err := eng.Execute(a); err != nil {
		return err
	}
	b := op.NewPhysioWrite("rogue0", op.FuncAppend, []byte{0x5A})
	if err := eng.Execute(b); err != nil {
		return err
	}
	if err := eng.Log().Force(); err != nil {
		return err
	}
	v, err := eng.Get("rogue0")
	if err != nil {
		return err
	}
	return eng.Store().WriteBatch([]stable.Entry{{ID: "rogue0", Val: v, VSI: b.LSN}}, stable.ModeSingle)
}

// TestExplorerCatchesBuggyPolicy is the explorer's self-test: planting a
// flush-order violation in the workload must produce failing schedules, and
// each failure's token must replay to the same failure.
func TestExplorerCatchesBuggyPolicy(t *testing.T) {
	stride := 1
	if testing.Short() {
		stride = 3
	}
	cfg, _ := LookupConfig("rW-identity-rSI")
	rep, err := Explore(cfg, stride, buggyRogue)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("explorer did not catch the planted flush-order violation")
	}
	var withFault *ScheduleFailure
	for i := range rep.Failures {
		if rep.Failures[i].Token != "none" {
			withFault = &rep.Failures[i]
			break
		}
	}
	if withFault == nil {
		t.Fatalf("no failing schedule carries a fault token: %v", rep.Failures)
	}
	if !strings.Contains(withFault.Repro(), withFault.Token) {
		t.Errorf("repro line %q does not embed the token", withFault.Repro())
	}
	t.Logf("caught at %d schedules, e.g. %v", len(rep.Failures), *withFault)

	// Replay the failing schedule (rogue included) from its token alone.
	pts, err := fault.ParseToken(withFault.Token)
	if err != nil {
		t.Fatalf("failure token %q does not parse: %v", withFault.Token, err)
	}
	if err := runSchedule(cfg, fault.NewPlan(pts...), buggyRogue); err == nil {
		t.Errorf("token %q did not replay to a failure", withFault.Token)
	}
}

// TestDBTransientFaultRetry drives the full scripted workload through
// transient EIO bursts on both channels and expects the engine's capped-
// backoff retry loops (log force and stable flush) to absorb every one:
// the script completes, every point fires, and the crash/recover/verify
// tail of the schedule still holds.
func TestDBTransientFaultRetry(t *testing.T) {
	cfg, ok := LookupConfig("rW-identity-rSI")
	if !ok {
		t.Fatal("missing default explorer config")
	}
	plan := fault.NewPlan(
		fault.Point{Chan: fault.ChanWAL, Index: 5, Kind: fault.KindTransient, Arg: 3},
		fault.Point{Chan: fault.ChanWAL, Index: 41, Kind: fault.KindTransient, Arg: 1},
		fault.Point{Chan: fault.ChanStable, Index: 3, Kind: fault.KindTransient, Arg: 3},
		fault.Point{Chan: fault.ChanStable, Index: 20, Kind: fault.KindTransient, Arg: 2},
	)
	if err := runSchedule(cfg, plan, nil); err != nil {
		t.Fatalf("transient faults were not absorbed by the retry loops: %v", err)
	}
	// Arg=n re-arms on the next n-1 retries, so 4 points fire 3+1+3+2 times.
	if got := len(plan.Fired()); got != 9 {
		t.Errorf("expected 9 transient firings, got %d: %v", got, plan.Fired())
	}
}

// TestCrashScheduleReplay replays one schedule from a repro token:
//
//	go test ./internal/sim -run TestCrashScheduleReplay \
//	    -fault.config "rW-identity-rSI" -fault.token "wal@17:torn=3"
func TestCrashScheduleReplay(t *testing.T) {
	if *faultToken == "" && *faultConfig == "" {
		t.Skip("no -fault.token/-fault.config given")
	}
	if *faultMixFlag != "" {
		if err := ReplayMixSchedule(*faultConfig, *faultMixFlag, *faultToken); err != nil {
			t.Fatalf("schedule %q (mix %q) on %q failed: %v", *faultToken, *faultMixFlag, *faultConfig, err)
		}
		return
	}
	if err := ReplaySchedule(*faultConfig, *faultToken); err != nil {
		t.Fatalf("schedule %q on %q failed: %v", *faultToken, *faultConfig, err)
	}
}
