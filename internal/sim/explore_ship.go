// Ship-schedule exploration: the replication analogue of the crash-schedule
// explorer.  One deterministic scripted workload runs on a primary while a
// sender continuously ships its log to a warm standby; the counting run
// tallies the shipped-batch boundaries, then every boundary is re-run with a
// failure injected exactly there — the primary dies and the standby is
// promoted, the standby crashes and restarts mid-stream, or the batch is
// dropped, duplicated, reordered, or transiently refused on the wire.  After
// every schedule the promoted standby must match the single-node re-execution
// oracle for the same log prefix, and (where anchored) its stable state must
// pass the paper's Theorem 3 explainability predicate.  Every failure carries
// a replayable repro schedule.
package sim

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/ship"
	"logicallog/internal/wal"
)

// ShipScheduleFailure is one failed ship schedule.  Mix is empty for the
// default scripted workload; otherwise it names the scenario mix that drove
// the primary.
type ShipScheduleFailure struct {
	Config   string
	Mix      string
	Schedule string
	Err      error
}

// Repro returns a shell command replaying exactly this schedule.
func (f ShipScheduleFailure) Repro() string {
	if f.Mix != "" {
		return fmt.Sprintf("go test ./internal/sim -run TestShipScheduleReplay -ship.config %q -ship.mix %q -ship.schedule %q", f.Config, f.Mix, f.Schedule)
	}
	return fmt.Sprintf("go test ./internal/sim -run TestShipScheduleReplay -ship.config %q -ship.schedule %q", f.Config, f.Schedule)
}

func (f ShipScheduleFailure) String() string {
	name := f.Config
	if f.Mix != "" {
		name += "/" + f.Mix
	}
	return fmt.Sprintf("[%s @ %s] %v\n    repro: %s", name, f.Schedule, f.Err, f.Repro())
}

// ShipExploreReport summarizes one configuration's ship exploration.
type ShipExploreReport struct {
	Config string
	// Boundaries counts the fault-free run's shipped batches (the boundary
	// after send k is schedule index k).
	Boundaries int
	// Schedules counts schedules executed (the counting run included).
	Schedules int
	Failures  []ShipScheduleFailure
}

// shipSchedule is one parsed schedule: the counting run, a machine crash at
// a shipped-batch boundary, or a fault plan on the ship channel.
type shipSchedule struct {
	kind     string // "count", "primary-crash", "standby-crash", "fault"
	boundary int
	token    string
}

func (s shipSchedule) String() string {
	switch s.kind {
	case "primary-crash", "standby-crash":
		return fmt.Sprintf("%s@%d", s.kind, s.boundary)
	case "fault":
		return s.token
	default:
		return "none"
	}
}

func parseShipSchedule(text string) (shipSchedule, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "none" {
		return shipSchedule{kind: "count"}, nil
	}
	for _, k := range []string{"primary-crash", "standby-crash"} {
		if rest, ok := strings.CutPrefix(text, k+"@"); ok {
			b, err := strconv.Atoi(rest)
			if err != nil || b < 0 {
				return shipSchedule{}, fmt.Errorf("sim: malformed ship schedule %q", text)
			}
			return shipSchedule{kind: k, boundary: b}, nil
		}
	}
	if _, err := fault.ParseToken(text); err != nil {
		return shipSchedule{}, fmt.Errorf("sim: ship schedule %q: %w", text, err)
	}
	return shipSchedule{kind: "fault", token: text}, nil
}

// ExploreShip runs the full ship-schedule exploration for one configuration:
// a fault-free counting run, then — per shipped-batch boundary, stepping by
// stride — a primary crash with failover, a standby crash with restart, and
// the four wire faults.  Schedule failures are collected, not fatal; only a
// broken harness returns an error.
func ExploreShip(cfg NamedConfig, stride int) (*ShipExploreReport, error) {
	return exploreShipWith(cfg, stride, "", runExploreScript, nil)
}

// exploreShipWith is the ship-exploration loop shared by the default script
// and the scenario-mix sweeps (see ExploreShipMix).
func exploreShipWith(cfg NamedConfig, stride int, mix string, script exploreScript, post func(*core.Engine) error) (*ShipExploreReport, error) {
	if stride < 1 {
		stride = 1
	}
	rep := &ShipExploreReport{Config: cfg.Name}

	sends, err := runShipScheduleWith(cfg, shipSchedule{kind: "count"}, script, post)
	rep.Schedules++
	if errors.Is(err, errHarness) {
		return nil, err
	}
	if err != nil {
		rep.Failures = append(rep.Failures, ShipScheduleFailure{cfg.Name, mix, "none", err})
	}
	rep.Boundaries = sends

	run := func(sched shipSchedule) {
		rep.Schedules++
		if _, err := runShipScheduleWith(cfg, sched, script, post); err != nil {
			rep.Failures = append(rep.Failures, ShipScheduleFailure{cfg.Name, mix, sched.String(), err})
		}
	}
	for b := 0; b < rep.Boundaries; b += stride {
		run(shipSchedule{kind: "primary-crash", boundary: b})
		run(shipSchedule{kind: "standby-crash", boundary: b})
		for _, tok := range []string{
			fmt.Sprintf("ship@%d:drop", b),
			fmt.Sprintf("ship@%d:dup", b),
			fmt.Sprintf("ship@%d:reorder=0", b),
			fmt.Sprintf("ship@%d:eio", b),
		} {
			run(shipSchedule{kind: "fault", token: tok})
		}
	}
	return rep, nil
}

// ReplayShipSchedule re-runs one ship schedule from its repro text.
func ReplayShipSchedule(configName, schedule string) error {
	cfg, ok := LookupConfig(configName)
	if !ok {
		return fmt.Errorf("sim: unknown explorer config %q", configName)
	}
	sched, err := parseShipSchedule(schedule)
	if err != nil {
		return err
	}
	_, err = runShipSchedule(cfg, sched)
	return err
}

// traceLSNs feeds the recorder from the standby's mirrored installs (the
// ship analogue of runRecorder.trace).
func (r *runRecorder) traceLSNs(lsns []op.SI) {
	if r.frozen {
		return
	}
	r.installed = append(r.installed, lsns...)
	r.marks = append(r.marks, len(r.installed))
}

// errShipBoundary marks the scripted run reaching its scheduled batch
// boundary — a clean stop, not a failure.
var errShipBoundary = errors.New("sim: ship boundary reached")

// boundaryTransport wraps the link, counts sends, and fires the scheduled
// boundary action exactly after the crashAt-th successful send: a primary
// crash surfaces errShipBoundary through the sender (stopping the script at
// that precise point), a standby crash restarts the standby in place and
// lets the stream converge by ack-driven resend.
type boundaryTransport struct {
	inner   ship.Transport
	sb      *ship.Standby // non-nil: crash/restart the standby at the boundary
	crashAt int           // 0-based send index; -1 = never
	sends   int
	fired   bool
}

func (bt *boundaryTransport) Send(b *ship.Batch) (ship.Ack, error) {
	ack, err := bt.inner.Send(b)
	idx := bt.sends
	bt.sends++
	if err != nil || bt.crashAt < 0 || idx != bt.crashAt {
		return ack, err
	}
	bt.fired = true
	if bt.sb == nil {
		return ack, errShipBoundary
	}
	bt.sb.Crash()
	if rerr := bt.sb.Restart(); rerr != nil {
		return ack, fmt.Errorf("%w: standby restart at boundary %d: %v", errHarness, idx, rerr)
	}
	// The pre-crash ack is still sound: Durable was forced (it survived the
	// crash) and a stale Want is corrected by the next real ack's rewind.
	return ack, nil
}

// runShipSchedule executes the scripted workload on a primary, continuously
// ships it to a standby under the schedule's failure, then fails over: crash
// the primary, promote the standby, and verify the promoted engine against
// the primary's history at the standby's applied horizon — plus Theorem 3
// explainability of its stable state where the base checkpoint anchors it.
// It returns the total sends, which the counting run uses as the boundary
// space.
func runShipSchedule(cfg NamedConfig, sched shipSchedule) (int, error) {
	return runShipScheduleWith(cfg, sched, runExploreScript, nil)
}

// runShipScheduleWith is runShipSchedule parameterized by the primary's
// script and an optional domain-level check on the promoted standby.
func runShipScheduleWith(cfg NamedConfig, sched shipSchedule, script exploreScript, post func(*core.Engine) error) (int, error) {
	fl := flight.NewRecorder(1 << 10)
	sends, err := runShipScheduleFlight(cfg, sched, script, post, fl)
	if err != nil && !errors.Is(err, errHarness) {
		err = attachForensics(err, fl, sched.String())
	}
	return sends, err
}

// runShipScheduleFlight shares one flight recorder between the primary, the
// wire, and the standby, so a failure's dump interleaves ship batch events
// with the standby's per-record apply decisions in one sequence.
func runShipScheduleFlight(cfg NamedConfig, sched shipSchedule, script exploreScript, post func(*core.Engine) error, fl *flight.Recorder) (int, error) {
	popts := cfg.Opts
	popts.LogDevice = wal.NewMemDevice()
	popts.RedoWorkers = 1 + (sched.boundary+len(sched.token))%4
	popts.Flight = fl
	rec := &runRecorder{}
	eng, err := core.New(popts)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", errHarness, err)
	}

	sopts := cfg.Opts
	sopts.RedoWorkers = popts.RedoWorkers
	sopts.Flight = fl
	// The standby keeps its whole log: the script emits non-clean
	// checkpoints (CheckpointOnly mid-dirty), and truncating at their
	// RedoStart would cut the log past the phase-0 snapshot that anchors the
	// explainability check.  Re-deriving the base ops over that snapshot is
	// the identity, so the full log explains fine.
	scfg := ship.StandbyConfig{Opts: sopts}
	if cfg.Opts.LogInstalls {
		scfg.InstallTrace = rec.traceLSNs
	}
	sb, err := ship.NewStandby(scfg)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", errHarness, err)
	}

	var plan *fault.Plan
	if sched.kind == "fault" {
		pts, err := fault.ParseToken(sched.token)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", errHarness, err)
		}
		plan = fault.NewPlan(pts...)
	}
	bt := &boundaryTransport{inner: ship.NewLink(sb, plan), crashAt: -1}
	switch sched.kind {
	case "primary-crash":
		bt.crashAt = sched.boundary
	case "standby-crash":
		bt.crashAt = sched.boundary
		bt.sb = sb
	}
	s := ship.NewSender(eng.Log(), bt, 1, ship.SenderConfig{BatchRecords: 3, Flight: fl})
	defer s.Close()

	scriptErr := script(eng, rec, func(step int, _ *core.Engine) error {
		return s.PumpAll()
	})
	boundaryHit := errors.Is(scriptErr, errShipBoundary)
	if scriptErr != nil && !boundaryHit {
		return bt.sends, fmt.Errorf("%w: ship script died: %v", errHarness, scriptErr)
	}
	if !boundaryHit {
		// Drain: everything durable must reach the standby before failover.
		if err := s.Sync(); err != nil {
			if !errors.Is(err, errShipBoundary) {
				return bt.sends, fmt.Errorf("sync: %w", err)
			}
			boundaryHit = true
		}
	}
	rec.frozen = true
	if bt.crashAt >= 0 && !bt.fired {
		return bt.sends, fmt.Errorf("%w: boundary %d never reached (%d sends)", errHarness, bt.crashAt, bt.sends)
	}
	if plan != nil {
		if un := plan.Unfired(); len(un) > 0 {
			return bt.sends, fmt.Errorf("%w: ship points never fired: %v", errHarness, un)
		}
	}

	// Failover: the primary dies; the standby's recovered state must equal
	// the single-node recovery oracle for the same log prefix.
	horizon := sb.Applied()
	hist := eng.History()
	eng.Crash()
	promoted, _, err := sb.Promote()
	if err != nil {
		return bt.sends, fmt.Errorf("promote: %w", err)
	}
	// Promotion may append past the applied horizon (CM identity writes from
	// the pre-adoption purge), but never lose any of it.
	if got := promoted.Log().StableLSN(); got < horizon {
		return bt.sends, fmt.Errorf("promoted durable horizon %d below standby applied %d", got, horizon)
	}
	if err := VerifyHistory(promoted.Registry(), hist, promoted, horizon); err != nil {
		return bt.sends, err
	}
	if cfg.Opts.LogInstalls && rec.initial != nil {
		if err := checkExplainableState(promoted, rec, fl); err != nil {
			return bt.sends, err
		}
	}
	if post != nil {
		if err := post(promoted); err != nil {
			return bt.sends, err
		}
	}
	// The promoted engine is a working primary: flushing everything must
	// preserve the recovered state.
	if err := promoted.FlushAll(); err != nil {
		return bt.sends, fmt.Errorf("post-promotion flush: %w", err)
	}
	if err := VerifyHistory(promoted.Registry(), hist, promoted, horizon); err != nil {
		return bt.sends, fmt.Errorf("after post-promotion flush: %w", err)
	}
	return bt.sends, nil
}
