package sim

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"logicallog/internal/btree"
	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/forensics"
	"logicallog/internal/lsm"
	"logicallog/internal/obs/flight"
	"logicallog/internal/wal"
	"logicallog/internal/workload"
)

// Differential model checking of the recoverable domains: one seeded
// scenario-mix operation stream drives a domain (B+tree or LSM tree) and the
// MixDriver's in-memory model in lockstep, on every engine configuration.
// Each run is cut by an injected fault from a repro-style token, crashed,
// and recovered; the engine must still match the history oracle, the
// reopened domain must pass its structural checks, and — after re-syncing
// the model to the recovered prefix — the stream continues and a final
// forced crash must recover contents exactly equal to the model.
const (
	modelStepsBefore = 80
	modelStepsAfter  = 40
	modelSeedBase    = 0xd1ff
)

// modelTokens are the per-seed fault plans: one WAL power cut, one torn
// WAL append, one stable-store power cut mid-install.  Indexes are small
// enough that every token fires well inside modelStepsBefore steps under
// the drive cadence below.
var modelTokens = []string{"wal@9:crash", "wal@13:torn=3", "stable@5:crash"}

// modelDomains enumerates the engine-object domains under differential
// test.  fresh builds the domain on an empty engine; open reattaches to
// recovered state.
var modelDomains = []struct {
	name  string
	fresh func(eng *core.Engine) (workload.Domain, error)
	open  func(eng *core.Engine) (workload.Domain, error)
}{
	{
		name:  "btree",
		fresh: func(eng *core.Engine) (workload.Domain, error) { return btree.New(eng, mixTreeName, mixTreeOrder) },
		open:  func(eng *core.Engine) (workload.Domain, error) { return btree.Open(eng, mixTreeName) },
	},
	{
		name:  "lsm",
		fresh: func(eng *core.Engine) (workload.Domain, error) { return lsm.New(eng, mixTreeName, mixLSMOptions()) },
		open:  func(eng *core.Engine) (workload.Domain, error) { return lsm.Open(eng, mixTreeName, mixLSMOptions()) },
	},
}

func injected(err error) bool {
	return errors.Is(err, fault.ErrInjected) || wal.IsTransient(err)
}

// driveModel interleaves driver steps with the engine's force/install/purge
// cadence until n steps ran or an injected fault surfaced.  It returns
// whether the fault cut the run short; any other error fails the test.
func driveModel(t *testing.T, eng *core.Engine, drv *workload.MixDriver, dom workload.Domain, n int) bool {
	t.Helper()
	for step := 0; step < n; step++ {
		var err error
		switch {
		case step%3 == 1:
			err = eng.Log().Force()
		case step%4 == 2:
			err = eng.InstallOne()
		case step%23 == 19:
			err = eng.FlushAll()
		}
		if err == nil {
			err = drv.Step(dom)
		}
		if err != nil {
			if injected(err) {
				return true
			}
			t.Fatalf("step %d: %v", step, err)
		}
	}
	return false
}

func TestDomainModelDifferential(t *testing.T) {
	for _, cfg := range ExplorerConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			for _, dc := range modelDomains {
				for _, seed := range seeds(t, 1, 4) {
					dc, seed := dc, seed
					t.Run(fmt.Sprintf("%s/seed%d", dc.name, seed), func(t *testing.T) {
						runDomainModel(t, cfg, dc.fresh, dc.open, seed)
					})
				}
			}
		})
	}
}

// modelForensics renders the decision chain behind a model divergence: the
// flight-recorded redo decisions for every logged record whose payload
// carries the divergent key's bytes (the pages or runs holding that key),
// followed by the tail of the flight dump.  Best effort — a key that never
// appears literally in a payload still gets the dump.
func modelForensics(eng *core.Engine, fl *flight.Recorder, verifyErr error) string {
	events := fl.Events()
	var b strings.Builder
	if key := divergentKey(verifyErr); key != "" {
		recs, err := forensics.ScanAll(eng.Log(), eng.Log().FirstLSN())
		if err == nil {
			explained := 0
			for _, rec := range recs {
				if rec.Type != wal.RecOperation || explained >= 8 {
					continue
				}
				hit := false
				for _, v := range rec.Op.Values {
					if bytes.Contains(v, []byte(key)) {
						hit = true
						break
					}
				}
				if !hit {
					continue
				}
				if x, xerr := forensics.Explain(recs, events, rec.LSN); xerr == nil {
					b.WriteString(x.String())
					explained++
				}
			}
			if explained > 0 {
				b.WriteString(fmt.Sprintf("(decision chain for records carrying divergent key %q)\n", key))
			}
		}
	}
	b.WriteString(forensics.Dump(events, 24))
	return b.String()
}

// divergentKey extracts the key named by a MixDriver.Verify failure
// ("workload: domain has unexpected key K" / "workload: domain K = ..,
// model says ..").
func divergentKey(err error) string {
	msg := err.Error()
	if _, rest, ok := strings.Cut(msg, "unexpected key "); ok {
		return strings.TrimSpace(rest)
	}
	if _, rest, ok := strings.Cut(msg, "workload: domain "); ok {
		if key, _, ok := strings.Cut(rest, " = "); ok {
			return strings.TrimSpace(key)
		}
	}
	return ""
}

func runDomainModel(t *testing.T, cfg NamedConfig,
	fresh, open func(*core.Engine) (workload.Domain, error), seed int64) {
	t.Helper()
	mixes := workload.MixNames()
	mix, err := workload.ParseMix(mixes[int(seed)%len(mixes)])
	if err != nil {
		t.Fatal(err)
	}
	token := modelTokens[int(seed)%len(modelTokens)]
	pts, err := fault.ParseToken(token)
	if err != nil {
		t.Fatalf("token %q: %v", token, err)
	}
	plan := fault.NewPlan(pts...)

	fl := flight.NewRecorder(1 << 10)
	opts := cfg.Opts
	opts.LogDevice = plan.WrapDevice(wal.NewMemDevice())
	opts.Flight = fl
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Store().SetWriteProbe(plan.StableProbe())
	registerDomains(eng.Registry())

	dom, err := fresh(eng)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := workload.NewMixDriver(mix, modelSeedBase+seed)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: drive into the armed fault, then crash and recover.
	cut := driveModel(t, eng, drv, dom, modelStepsBefore)
	if !cut {
		t.Fatalf("token %q never fired in %d steps (mix %s): unfired %v",
			token, modelStepsBefore, mix.Name, plan.Unfired())
	}
	eng.Crash()
	plan.Heal()
	if _, err := eng.Recover(); err != nil {
		t.Fatalf("recover after %q: %v", token, err)
	}
	if err := VerifyAgainstOracle(eng, eng.Log().StableLSN()); err != nil {
		t.Fatalf("oracle after %q: %v", token, err)
	}

	// Phase 2: the recovered domain must reopen and pass its structural
	// checks; the model re-syncs to the recovered (log-prefix) contents.
	dom, err = open(eng)
	if err != nil {
		t.Fatalf("reopen after %q: %v", token, err)
	}
	if err := dom.Check(); err != nil {
		t.Fatalf("recovered domain after %q: %v", token, err)
	}
	if err := drv.Adopt(dom); err != nil {
		t.Fatal(err)
	}
	if err := drv.Verify(dom); err != nil {
		t.Fatalf("post-adopt verify: %v\n%s", err, modelForensics(eng, fl, err))
	}

	// Phase 3: the recovered domain must remain fully usable — continue the
	// stream, force everything, and a clean crash must recover contents
	// exactly equal to the model.
	if cut := driveModel(t, eng, drv, dom, modelStepsAfter); cut {
		t.Fatalf("fault fired again after heal")
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatalf("final recover: %v", err)
	}
	dom, err = open(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Verify(dom); err != nil {
		t.Fatalf("forced prefix did not recover exactly: %v\n%s", err, modelForensics(eng, fl, err))
	}
}
