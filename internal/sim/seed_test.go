package sim

import (
	"flag"
	"testing"
)

// seedFlag pins every seed-ranging crash test in this package to a single
// seed, for reproducing a failure reported as "seed N: ...":
//
//	go test ./internal/sim -run TestCrashRecoveryMatrix -seed N
var seedFlag = flag.Int64("seed", 0, "pin randomized crash tests to this single seed (0 = full range)")

// seeds returns the half-open range [lo, hi) — or only the pinned seed when
// -seed is set.
func seeds(t *testing.T, lo, hi int64) []int64 {
	t.Helper()
	if *seedFlag != 0 {
		t.Logf("seed range [%d,%d) pinned to -seed=%d", lo, hi, *seedFlag)
		return []int64{*seedFlag}
	}
	out := make([]int64, 0, hi-lo)
	for s := lo; s < hi; s++ {
		out = append(out, s)
	}
	return out
}

// pinnedSeed returns def, or the -seed override when set.
func pinnedSeed(t *testing.T, def int64) int64 {
	t.Helper()
	if *seedFlag != 0 {
		t.Logf("seed %d pinned to -seed=%d", def, *seedFlag)
		return *seedFlag
	}
	return def
}
