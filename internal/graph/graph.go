// Package graph provides the directed-graph machinery the recovery framework
// is built on: successor/predecessor tracking, Tarjan strongly-connected
// components, collapse-by-partition (used twice by the paper's WriteGraph
// construction, Figure 3), topological ordering, reachability, and minimal
// (predecessor-free) node enumeration.
//
// Nodes are opaque int64 ids chosen by the caller.  The graph is a simple
// digraph: parallel edges are coalesced and self-loops are representable but
// reported by Validate (write graphs must not contain them after collapse).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node.  Callers allocate ids; the graph never invents
// them.
type NodeID int64

// Digraph is a mutable directed graph.  The zero value is not usable; call
// New.
type Digraph struct {
	succ map[NodeID]map[NodeID]struct{}
	pred map[NodeID]map[NodeID]struct{}
}

// New returns an empty digraph.
func New() *Digraph {
	return &Digraph{
		succ: make(map[NodeID]map[NodeID]struct{}),
		pred: make(map[NodeID]map[NodeID]struct{}),
	}
}

// AddNode ensures n exists.  Adding an existing node is a no-op.
func (g *Digraph) AddNode(n NodeID) {
	if _, ok := g.succ[n]; !ok {
		g.succ[n] = make(map[NodeID]struct{})
		g.pred[n] = make(map[NodeID]struct{})
	}
}

// HasNode reports whether n exists.
func (g *Digraph) HasNode(n NodeID) bool {
	_, ok := g.succ[n]
	return ok
}

// AddEdge inserts the edge u -> v, creating the endpoints as needed.
// Parallel edges coalesce.
func (g *Digraph) AddEdge(u, v NodeID) {
	g.AddNode(u)
	g.AddNode(v)
	g.succ[u][v] = struct{}{}
	g.pred[v][u] = struct{}{}
}

// HasEdge reports whether the edge u -> v exists.
func (g *Digraph) HasEdge(u, v NodeID) bool {
	if s, ok := g.succ[u]; ok {
		_, ok2 := s[v]
		return ok2
	}
	return false
}

// RemoveEdge deletes u -> v if present.
func (g *Digraph) RemoveEdge(u, v NodeID) {
	if s, ok := g.succ[u]; ok {
		delete(s, v)
	}
	if p, ok := g.pred[v]; ok {
		delete(p, u)
	}
}

// RemoveNode deletes n and all incident edges.
func (g *Digraph) RemoveNode(n NodeID) {
	//lint:ignore replaydeterminism independent per-edge deletes; final maps identical in any order
	for v := range g.succ[n] {
		delete(g.pred[v], n)
	}
	//lint:ignore replaydeterminism independent per-edge deletes; final maps identical in any order
	for u := range g.pred[n] {
		delete(g.succ[u], n)
	}
	delete(g.succ, n)
	delete(g.pred, n)
}

// Len returns the number of nodes.
func (g *Digraph) Len() int { return len(g.succ) }

// EdgeCount returns the number of edges.
func (g *Digraph) EdgeCount() int {
	n := 0
	//lint:ignore replaydeterminism commutative sum
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// Nodes returns all node ids in ascending order.
func (g *Digraph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.succ))
	//lint:ignore replaydeterminism key collection is order-independent; sorted below
	for n := range g.succ {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Succ returns n's successors in ascending order.
func (g *Digraph) Succ(n NodeID) []NodeID { return sortedKeys(g.succ[n]) }

// Pred returns n's predecessors in ascending order.
func (g *Digraph) Pred(n NodeID) []NodeID { return sortedKeys(g.pred[n]) }

// InDegree returns the number of predecessors of n.
func (g *Digraph) InDegree(n NodeID) int { return len(g.pred[n]) }

// OutDegree returns the number of successors of n.
func (g *Digraph) OutDegree(n NodeID) int { return len(g.succ[n]) }

// Minimal returns the nodes with no predecessors, ascending.  These are the
// write-graph nodes whose flush installs their operations (Figure 4's
// "choose a minimal node v in W").
func (g *Digraph) Minimal() []NodeID {
	var out []NodeID
	//lint:ignore replaydeterminism membership filter is order-independent; sorted below
	for n, p := range g.pred {
		if len(p) == 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New()
	//lint:ignore replaydeterminism set copy; resulting maps identical in any order
	for n := range g.succ {
		c.AddNode(n)
	}
	//lint:ignore replaydeterminism edge-set copy; resulting maps identical in any order
	for u, s := range g.succ {
		//lint:ignore replaydeterminism edge-set copy; resulting maps identical in any order
		for v := range s {
			c.AddEdge(u, v)
		}
	}
	return c
}

// Reachable reports whether v is reachable from u (u itself counts).
func (g *Digraph) Reachable(u, v NodeID) bool {
	if !g.HasNode(u) || !g.HasNode(v) {
		return false
	}
	if u == v {
		return true
	}
	seen := map[NodeID]struct{}{u: {}}
	stack := []NodeID{u}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		//lint:ignore replaydeterminism visit order varies but the reachability answer does not
		for s := range g.succ[n] {
			if s == v {
				return true
			}
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				stack = append(stack, s)
			}
		}
	}
	return false
}

// HasCycle reports whether g contains a directed cycle (self-loops count).
func (g *Digraph) HasCycle() bool {
	for _, comp := range g.SCC() {
		if len(comp) > 1 {
			return true
		}
		if g.HasEdge(comp[0], comp[0]) {
			return true
		}
	}
	return false
}

// SCC returns the strongly connected components of g using Tarjan's
// algorithm (iterative, so deep graphs cannot overflow the goroutine stack).
// Components are returned in reverse topological order (a component appears
// before the components it can reach... specifically Tarjan emits a
// component only after all components it reaches), with node ids sorted
// within each component.
func (g *Digraph) SCC() [][]NodeID {
	index := make(map[NodeID]int, len(g.succ))
	low := make(map[NodeID]int, len(g.succ))
	onStack := make(map[NodeID]bool, len(g.succ))
	var stack []NodeID
	var comps [][]NodeID
	next := 0

	type frame struct {
		n     NodeID
		succs []NodeID
		i     int
	}

	for _, root := range g.Nodes() {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{n: root, succs: g.Succ(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				s := f.succs[f.i]
				f.i++
				if _, seen := index[s]; !seen {
					index[s], low[s] = next, next
					next++
					stack = append(stack, s)
					onStack[s] = true
					frames = append(frames, frame{n: s, succs: g.Succ(s)})
				} else if onStack[s] && index[s] < low[f.n] {
					low[f.n] = index[s]
				}
				continue
			}
			// All successors explored: maybe emit a component.
			if low[f.n] == index[f.n] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.n {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				comps = append(comps, comp)
			}
			n := f.n
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[n] < low[p.n] {
					low[p.n] = low[n]
				}
			}
		}
	}
	return comps
}

// TopoOrder returns a topological ordering of g's nodes.  It returns an
// error if g is cyclic.  Ties break by ascending node id, so the order is
// deterministic.
func (g *Digraph) TopoOrder() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.succ))
	//lint:ignore replaydeterminism independent per-key writes
	for n := range g.succ {
		indeg[n] = len(g.pred[n])
	}
	var ready []NodeID
	//lint:ignore replaydeterminism membership filter is order-independent; sorted below
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var order []NodeID
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		newly := []NodeID{}
		for _, s := range g.Succ(n) {
			indeg[s]--
			if indeg[s] == 0 {
				newly = append(newly, s)
			}
		}
		// Keep the ready list sorted for determinism.
		ready = append(ready, newly...)
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	if len(order) != len(g.succ) {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(order), len(g.succ))
	}
	return order, nil
}

// Collapse collapses g with respect to a partition of its nodes, exactly as
// in Figure 3 of the paper: the result has one node per partition class, and
// an edge between classes v and w iff some edge of g connects a member of v
// to a member of w.  Self-edges created by intra-class edges are dropped
// (they carry no flush-ordering information once the class flushes
// atomically).
//
// partition maps every node of g to its class id; nodes sharing a class id
// collapse together.  Class ids become the node ids of the result.
func (g *Digraph) Collapse(partition map[NodeID]NodeID) (*Digraph, error) {
	out := New()
	//lint:ignore replaydeterminism set construction; first missing-partition error is the only order effect and any violation fails
	for n := range g.succ {
		c, ok := partition[n]
		if !ok {
			return nil, fmt.Errorf("graph: node %d missing from partition", n)
		}
		out.AddNode(c)
	}
	//lint:ignore replaydeterminism edge-set construction; resulting maps identical in any order
	for u, s := range g.succ {
		cu := partition[u]
		//lint:ignore replaydeterminism edge-set construction; resulting maps identical in any order
		for v := range s {
			cv := partition[v]
			if cu != cv {
				out.AddEdge(cu, cv)
			}
		}
	}
	return out, nil
}

// CondensationPartition returns a partition mapping each node to the
// smallest node id of its strongly connected component.  Feeding this to
// Collapse yields the condensation of g, which is acyclic — the second
// collapse of Figure 3 ("collapsing V made W acyclic").
func (g *Digraph) CondensationPartition() map[NodeID]NodeID {
	part := make(map[NodeID]NodeID, len(g.succ))
	for _, comp := range g.SCC() {
		rep := comp[0] // components are sorted ascending
		for _, n := range comp {
			part[n] = rep
		}
	}
	return part
}

// TransitiveClosurePartition computes the partition induced by the
// transitive closure of a symmetric "related" relation over nodes — the
// first collapse of Figure 3, where O ~ P iff writeset(O) ∩ writeset(P) ≠ ∅.
// It is implemented as union-find over the provided related pairs.
func TransitiveClosurePartition(nodes []NodeID, related [][2]NodeID) map[NodeID]NodeID {
	uf := NewUnionFind()
	for _, n := range nodes {
		uf.Add(n)
	}
	for _, pair := range related {
		uf.Union(pair[0], pair[1])
	}
	part := make(map[NodeID]NodeID, len(nodes))
	for _, n := range nodes {
		part[n] = uf.Find(n)
	}
	return part
}

// Validate checks structural invariants: pred/succ symmetry and absence of
// dangling endpoints.  Used by tests and by the write-graph packages after
// mutation-heavy phases.
func (g *Digraph) Validate() error {
	//lint:ignore replaydeterminism invariant scan; any violation fails, which one is reported is immaterial
	for u, s := range g.succ {
		//lint:ignore replaydeterminism invariant scan; any violation fails, which one is reported is immaterial
		for v := range s {
			if _, ok := g.pred[v]; !ok {
				return fmt.Errorf("graph: edge %d->%d has dangling head", u, v)
			}
			if _, ok := g.pred[v][u]; !ok {
				return fmt.Errorf("graph: edge %d->%d missing from pred index", u, v)
			}
		}
	}
	//lint:ignore replaydeterminism invariant scan; any violation fails, which one is reported is immaterial
	for v, p := range g.pred {
		//lint:ignore replaydeterminism invariant scan; any violation fails, which one is reported is immaterial
		for u := range p {
			if _, ok := g.succ[u]; !ok {
				return fmt.Errorf("graph: edge %d->%d has dangling tail", u, v)
			}
			if _, ok := g.succ[u][v]; !ok {
				return fmt.Errorf("graph: edge %d->%d missing from succ index", u, v)
			}
		}
	}
	return nil
}

func sortedKeys(m map[NodeID]struct{}) []NodeID {
	out := make([]NodeID, 0, len(m))
	//lint:ignore replaydeterminism key collection is order-independent; sorted below
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
