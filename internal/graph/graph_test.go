package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestAddRemoveBasics(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // parallel edges coalesce
	g.AddEdge(2, 3)
	if g.Len() != 3 || g.EdgeCount() != 2 {
		t.Fatalf("Len=%d EdgeCount=%d", g.Len(), g.EdgeCount())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("HasEdge wrong")
	}
	if !reflect.DeepEqual(g.Succ(1), []NodeID{2}) || !reflect.DeepEqual(g.Pred(3), []NodeID{2}) {
		t.Error("Succ/Pred wrong")
	}
	if g.InDegree(2) != 1 || g.OutDegree(2) != 1 {
		t.Error("degrees wrong")
	}
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) || g.EdgeCount() != 1 {
		t.Error("RemoveEdge failed")
	}
	g.AddEdge(1, 2)
	g.RemoveNode(2)
	if g.HasNode(2) || g.EdgeCount() != 0 || g.Len() != 2 {
		t.Error("RemoveNode failed to clean incident edges")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMinimal(t *testing.T) {
	g := New()
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddNode(4)
	if got := g.Minimal(); !reflect.DeepEqual(got, []NodeID{1, 2, 4}) {
		t.Errorf("Minimal = %v", got)
	}
	g.RemoveNode(1)
	g.RemoveNode(2)
	if got := g.Minimal(); !reflect.DeepEqual(got, []NodeID{3, 4}) {
		t.Errorf("Minimal after removal = %v", got)
	}
}

func TestReachable(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1) // cycle
	g.AddNode(9)
	if !g.Reachable(1, 3) || !g.Reachable(3, 2) || !g.Reachable(1, 1) {
		t.Error("Reachable within cycle failed")
	}
	if g.Reachable(1, 9) || g.Reachable(9, 1) {
		t.Error("Reachable to isolated node")
	}
	if g.Reachable(1, 100) || g.Reachable(100, 1) {
		t.Error("Reachable with missing node")
	}
}

func TestSCCSimple(t *testing.T) {
	g := New()
	// Two cycles {1,2,3} and {4,5}, plus bridge 3->4 and isolated 6.
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 4)
	g.AddNode(6)
	comps := g.SCC()
	sets := map[int][]NodeID{}
	for _, c := range comps {
		sets[len(c)] = append(sets[len(c)], c...)
	}
	if len(comps) != 3 {
		t.Fatalf("SCC count = %d, want 3: %v", len(comps), comps)
	}
	found3, found2 := false, false
	for _, c := range comps {
		switch len(c) {
		case 3:
			found3 = reflect.DeepEqual(c, []NodeID{1, 2, 3})
		case 2:
			found2 = reflect.DeepEqual(c, []NodeID{4, 5})
		}
	}
	if !found3 || !found2 {
		t.Errorf("SCC components wrong: %v", comps)
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// 200k-node chain: a recursive Tarjan would overflow; ours must not.
	g := New()
	const n = 200_000
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	if got := len(g.SCC()); got != n {
		t.Errorf("SCC on chain = %d components, want %d", got, n)
	}
}

func TestHasCycle(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if g.HasCycle() {
		t.Error("acyclic graph reported cyclic")
	}
	g.AddEdge(3, 1)
	if !g.HasCycle() {
		t.Error("cycle not detected")
	}
	h := New()
	h.AddEdge(7, 7)
	if !h.HasCycle() {
		t.Error("self-loop not detected")
	}
}

func TestTopoOrder(t *testing.T) {
	g := New()
	g.AddEdge(3, 1)
	g.AddEdge(3, 2)
	g.AddEdge(1, 2)
	g.AddNode(0)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NodeID]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos[3] > pos[1] || pos[1] > pos[2] || pos[3] > pos[2] {
		t.Errorf("topo order violates edges: %v", order)
	}
	// Determinism: 0 has no constraints and smallest id, so it comes first.
	if order[0] != 0 {
		t.Errorf("expected deterministic tie-break, got %v", order)
	}
	g.AddEdge(2, 3)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("TopoOrder on cyclic graph must error")
	}
}

func TestCollapse(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	// Collapse {1,2} together.
	part := map[NodeID]NodeID{1: 10, 2: 10, 3: 30}
	c, err := g.Collapse(part)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("collapsed Len = %d", c.Len())
	}
	if !c.HasEdge(10, 30) {
		t.Error("collapsed edge missing")
	}
	if c.HasEdge(10, 10) {
		t.Error("intra-class edge must be dropped")
	}
	// Missing partition entry errors.
	if _, err := g.Collapse(map[NodeID]NodeID{1: 1}); err == nil {
		t.Error("Collapse with incomplete partition must error")
	}
}

func TestCondensationMakesAcyclic(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 3)
	cond, err := g.Collapse(g.CondensationPartition())
	if err != nil {
		t.Fatal(err)
	}
	if cond.HasCycle() {
		t.Error("condensation must be acyclic")
	}
	if cond.Len() != 2 {
		t.Errorf("condensation Len = %d, want 2", cond.Len())
	}
	if !cond.HasEdge(1, 3) {
		t.Error("condensation lost inter-component edge")
	}
}

func TestCondensationRandomProperty(t *testing.T) {
	// Property: for random graphs, the condensation is always acyclic and
	// node count equals the SCC count.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		g := New()
		n := 2 + rng.Intn(30)
		for i := 0; i < n; i++ {
			g.AddNode(NodeID(i))
		}
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		cond, err := g.Collapse(g.CondensationPartition())
		if err != nil {
			t.Fatal(err)
		}
		if cond.HasCycle() {
			t.Fatalf("trial %d: condensation cyclic", trial)
		}
		if cond.Len() != len(g.SCC()) {
			t.Fatalf("trial %d: condensation Len %d != SCC count %d", trial, cond.Len(), len(g.SCC()))
		}
		if _, err := cond.TopoOrder(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestClone(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.HasNode(3) || g.EdgeCount() != 1 {
		t.Error("Clone aliased the original")
	}
	if !c.HasEdge(1, 2) || !c.HasEdge(2, 3) {
		t.Error("Clone incomplete")
	}
}

func TestTransitiveClosurePartition(t *testing.T) {
	nodes := []NodeID{1, 2, 3, 4, 5}
	related := [][2]NodeID{{1, 2}, {2, 3}, {4, 5}}
	part := TransitiveClosurePartition(nodes, related)
	if part[1] != part[2] || part[2] != part[3] {
		t.Error("1,2,3 must share a class")
	}
	if part[4] != part[5] {
		t.Error("4,5 must share a class")
	}
	if part[1] == part[4] {
		t.Error("distinct classes merged")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind()
	uf.Add(1)
	uf.Add(1)
	if !uf.Has(1) || uf.Has(2) {
		t.Error("Has wrong")
	}
	uf.Union(1, 2)
	uf.Union(3, 4)
	if !uf.Same(1, 2) || uf.Same(1, 3) {
		t.Error("Union/Same wrong")
	}
	if uf.SetSize(1) != 2 || uf.SetSize(3) != 2 {
		t.Errorf("SetSize = %d, %d", uf.SetSize(1), uf.SetSize(3))
	}
	uf.Union(2, 3)
	if !uf.Same(1, 4) || uf.SetSize(4) != 4 {
		t.Error("transitive union failed")
	}
	// Union of already-united elements is a no-op.
	r := uf.Union(1, 4)
	if r != uf.Find(1) {
		t.Error("Union of same set changed representative")
	}
}

func TestUnionFindManyElements(t *testing.T) {
	uf := NewUnionFind()
	const n = 10000
	for i := 0; i < n; i++ {
		uf.Union(NodeID(i), NodeID((i+1)%n))
	}
	if uf.SetSize(0) != n {
		t.Errorf("SetSize = %d, want %d", uf.SetSize(0), n)
	}
	rep := uf.Find(0)
	for i := 1; i < n; i += 997 {
		if uf.Find(NodeID(i)) != rep {
			t.Fatalf("element %d has different representative", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	// Corrupt the pred index directly.
	delete(g.pred[2], 1)
	if err := g.Validate(); err == nil {
		t.Error("Validate missed pred corruption")
	}
	h := New()
	h.AddEdge(1, 2)
	delete(h.succ[1], 2)
	if err := h.Validate(); err == nil {
		t.Error("Validate missed succ corruption")
	}
}
