package graph

// UnionFind is a disjoint-set forest with union by rank and path compression.
// It backs the transitive-closure collapse of Figure 3 (operations related by
// writeset overlap) and the rW node-merge of Figure 6.
type UnionFind struct {
	parent map[NodeID]NodeID
	rank   map[NodeID]int
	size   map[NodeID]int
}

// NewUnionFind returns an empty forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent: make(map[NodeID]NodeID),
		rank:   make(map[NodeID]int),
		size:   make(map[NodeID]int),
	}
}

// Add ensures n exists as a singleton set.  Adding an existing element is a
// no-op.
func (u *UnionFind) Add(n NodeID) {
	if _, ok := u.parent[n]; !ok {
		u.parent[n] = n
		u.size[n] = 1
	}
}

// Has reports whether n has been added.
func (u *UnionFind) Has(n NodeID) bool {
	_, ok := u.parent[n]
	return ok
}

// Find returns the representative of n's set, adding n if absent.
func (u *UnionFind) Find(n NodeID) NodeID {
	u.Add(n)
	root := n
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[n] != root {
		n, u.parent[n] = u.parent[n], root
	}
	return root
}

// Union merges the sets of a and b and returns the new representative.
func (u *UnionFind) Union(a, b NodeID) NodeID {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return ra
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b NodeID) bool { return u.Find(a) == u.Find(b) }

// SetSize returns the size of n's set.
func (u *UnionFind) SetSize(n NodeID) int { return u.size[u.Find(n)] }
