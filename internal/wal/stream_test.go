package wal

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"logicallog/internal/obs"
	"logicallog/internal/op"
)

var streamSeedFlag = flag.Int64("seed", 0, "pin randomized stream tests to this single seed (0 = full range)")

// genRecord returns the i-th record of the deterministic mixed workload used
// by the byte-identity tests.  A fresh Record is built per call so each run
// gets its own LSN fields.
func genRecord(rng *rand.Rand, keys []op.ObjectID) *Record {
	k := keys[rng.Intn(len(keys))]
	switch rng.Intn(10) {
	case 0:
		return NewFlushRecord(k, 1)
	case 1:
		return NewCheckpointRecord([]DirtyEntry{{ID: k, RSI: op.SI(rng.Intn(5) + 1)}})
	case 2:
		return NewOpRecord(op.NewIdentityWrite(k, randVal(rng)))
	case 3:
		other := keys[rng.Intn(len(keys))]
		return NewOpRecord(op.NewLogical(op.FuncCopy, []byte(k),
			[]op.ObjectID{other}, []op.ObjectID{k}))
	case 4:
		return NewOpRecord(op.NewDelete(k))
	default:
		return NewOpRecord(op.NewPhysicalWrite(k, randVal(rng)))
	}
}

func randVal(rng *rand.Rand) []byte {
	v := make([]byte, 1+rng.Intn(64))
	rng.Read(v)
	return v
}

// runStreamWorkload drives the same seeded workload against a fresh log
// configured with the given stream count, forcing at deterministic points,
// and returns the durable device bytes.
func runStreamWorkload(t *testing.T, seed int64, streams int, absorb bool) []byte {
	t.Helper()
	keys := []op.ObjectID{"K0", "K1", "K2", "K3"}
	rng := rand.New(rand.NewSource(seed))
	dev := NewMemDevice()
	l, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(streams, absorb)
	appended := op.SI(0)
	for i := 0; i < 200; i++ {
		lsn := mustAppend(t, l, genRecord(rng, keys))
		appended = lsn
		if rng.Intn(20) == 0 {
			upTo := op.SI(1 + rng.Int63n(int64(appended)))
			if err := l.ForceThrough(upTo); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	data, err := dev.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestStreamDurableBytesIdentical(t *testing.T) {
	// The core fast-lane invariant: the durable byte stream is identical no
	// matter how many append lanes produced it.  A single-threaded workload
	// makes absorption decisions deterministic, so the check holds with
	// absorption on as well.
	for _, absorb := range []bool{false, true} {
		base := runStreamWorkload(t, 7, 1, absorb)
		for _, n := range []int{2, 4, 8} {
			got := runStreamWorkload(t, 7, n, absorb)
			if !bytes.Equal(base, got) {
				t.Errorf("absorb=%v: durable log with %d streams differs from single-stream (%d vs %d bytes)",
					absorb, n, len(got), len(base))
			}
		}
	}
}

func TestStreamConcurrentAppendsStayDense(t *testing.T) {
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(4, true)
	const goroutines, perG = 8, 200
	// written records each append's (key, value) by assigned LSN, so the
	// durable log can be checked against true LSN order — not just density:
	// replay must end at the value of each key's highest-LSN write, and that
	// write must never be the one tombstoned (the inverted-absorption race
	// elided the later of two concurrent writes).
	var mu sync.Mutex
	written := make(map[op.SI]struct {
		key op.ObjectID
		val []byte
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Mix goroutine-private and shared keys so the absorption index
			// sees concurrent candidates.
			for i := 0; i < perG; i++ {
				var key op.ObjectID
				if i%3 == 0 {
					key = "shared"
				} else {
					key = op.ObjectID(fmt.Sprintf("g%d", g))
				}
				val := []byte{byte(g), byte(i)}
				lsn, err := l.AppendOp(op.NewPhysicalWrite(key, val))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				written[lsn] = struct {
					key op.ObjectID
					val []byte
				}{key, val}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	sc, err := l.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*perG {
		t.Fatalf("durable records = %d, want %d", len(recs), goroutines*perG)
	}
	for i, rec := range recs {
		if rec.LSN != op.SI(i+1) {
			t.Fatalf("record %d has LSN %d: merged stream is not dense", i, rec.LSN)
		}
	}
	// Per-key oracle: the highest-LSN write to each key.
	lastWrite := make(map[op.ObjectID]op.SI)
	for lsn, w := range written {
		if lsn > lastWrite[w.key] {
			lastWrite[w.key] = lsn
		}
	}
	state := make(map[op.ObjectID][]byte)
	for _, rec := range recs {
		switch rec.Type {
		case RecOperation:
			for _, x := range rec.Op.WriteSet {
				state[x] = rec.Op.Values[x]
			}
		case RecAbsorbed:
			if lastWrite[rec.Absorbed.Object] == rec.LSN {
				t.Errorf("LSN %d, the last write to %q, was tombstoned: absorption inverted LSN order",
					rec.LSN, rec.Absorbed.Object)
			}
		default:
			t.Errorf("unexpected record type %s at LSN %d", rec.Type, rec.LSN)
		}
	}
	for key, lsn := range lastWrite {
		if want := written[lsn].val; !op.Equal(state[key], want) {
			t.Errorf("replayed %q = %v, want %v (value of its highest-LSN write, LSN %d)",
				key, state[key], want, lsn)
		}
	}
}

func TestBackoffCappedExponentialGrowth(t *testing.T) {
	// Regression for the retry loop recomputing its delay from scratch every
	// attempt: a hoisted Backoff must yield the capped doubling sequence.
	b := NewBackoff(time.Millisecond, 8*time.Millisecond)
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, 8 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Errorf("Next() #%d = %v, want %v", i, got, w)
		}
	}
	// Zero base never sleeps.
	z := NewBackoff(0, time.Second)
	if got := z.Next(); got != 0 {
		t.Errorf("zero-base Next() = %v", got)
	}
	// The stateless helper agrees with the stateful sequence.
	for attempt := 1; attempt <= len(want); attempt++ {
		if got := TransientBackoff(attempt, time.Millisecond, 8*time.Millisecond); got != want[attempt-1] {
			t.Errorf("TransientBackoff(%d) = %v, want %v", attempt, got, want[attempt-1])
		}
	}
	if got := TransientBackoff(0, time.Millisecond, 8*time.Millisecond); got != 0 {
		t.Errorf("TransientBackoff(0) = %v, want 0", got)
	}
}

func TestAbsorptionElidesSupersededWrite(t *testing.T) {
	r := obs.NewRegistry()
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetObs(r)
	l.SetStreams(1, true)
	v1 := bytes.Repeat([]byte("a"), 256)
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", v1)))
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v2"))))
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("Y", []byte("w"))))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	sc, _ := l.Scan(0)
	recs, err := sc.All()
	if err != nil || len(recs) != 3 {
		t.Fatalf("scan: %d records, %v", len(recs), err)
	}
	if recs[0].Type != RecAbsorbed {
		t.Fatalf("superseded write survived as %s, want absorbed tombstone", recs[0].Type)
	}
	if recs[0].LSN != 1 || recs[0].Absorbed.Object != "X" {
		t.Errorf("tombstone = LSN %d obj %q", recs[0].LSN, recs[0].Absorbed.Object)
	}
	if recs[0].Absorbed.Elided <= 0 {
		t.Errorf("tombstone Elided = %d", recs[0].Absorbed.Elided)
	}
	if recs[1].Type != RecOperation || !op.Equal(recs[1].Op.Values["X"], []byte("v2")) {
		t.Error("absorbing write must survive in full")
	}
	st := l.Stats()
	if st.Absorbed != 1 {
		t.Errorf("Stats.Absorbed = %d", st.Absorbed)
	}
	if st.BytesElided <= 0 {
		t.Errorf("Stats.BytesElided = %d", st.BytesElided)
	}
	snap := r.Snapshot()
	if snap.Counters["wal.absorb.hits"] != 1 {
		t.Errorf("wal.absorb.hits = %d", snap.Counters["wal.absorb.hits"])
	}
	if snap.Counters["wal.absorb.bytes_elided"] <= 0 {
		t.Errorf("wal.absorb.bytes_elided = %d", snap.Counters["wal.absorb.bytes_elided"])
	}
}

func TestAbsorbedWriteCrashBeforeForce(t *testing.T) {
	// An absorbed record that was never forced must not survive a crash in
	// any form — neither its frame nor a tombstone.
	dev := NewMemDevice()
	l, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(2, true)
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v1"))))
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v2"))))
	if lost := l.Crash(); lost != 2 {
		t.Errorf("Crash lost %d records, want 2", lost)
	}
	sc, _ := l.Scan(0)
	if recs, _ := sc.All(); len(recs) != 0 {
		t.Fatalf("%d records survived an unforced crash", len(recs))
	}
	// The absorption index died with the volatile tail: a restarted log is
	// not paired with a dead candidate and absorbs nothing.
	l2, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	l2.SetStreams(2, true)
	if lsn := mustAppend(t, l2, NewOpRecord(op.NewPhysicalWrite("X", []byte("v3")))); lsn != 1 {
		t.Errorf("post-crash LSN = %d, want 1", lsn)
	}
	if err := l2.Force(); err != nil {
		t.Fatal(err)
	}
	sc, _ = l2.Scan(0)
	recs, _ := sc.All()
	if len(recs) != 1 || recs[0].Type != RecOperation {
		t.Fatalf("post-crash log = %+v", recs)
	}
	if l2.Stats().Absorbed != 0 {
		t.Errorf("Stats.Absorbed = %d, want 0", l2.Stats().Absorbed)
	}
}

func TestIdentityWritesNeverAbsorbed(t *testing.T) {
	// W_IP(X) re-logs X's current value so a later redo can start from it;
	// eliding one would reopen the lost-write hole the identity write exists
	// to close.
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(1, true)
	mustAppend(t, l, NewOpRecord(op.NewIdentityWrite("X", []byte("v1"))))
	mustAppend(t, l, NewOpRecord(op.NewIdentityWrite("X", []byte("v2"))))
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v3"))))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	sc, _ := l.Scan(0)
	recs, _ := sc.All()
	if len(recs) != 3 {
		t.Fatalf("scan: %d records", len(recs))
	}
	for i, rec := range recs {
		if rec.Type != RecOperation {
			t.Errorf("record %d is %s, want full op", i, rec.Type)
		}
	}
	if l.Stats().Absorbed != 0 {
		t.Errorf("Stats.Absorbed = %d, want 0", l.Stats().Absorbed)
	}
}

func TestReadPinPreventsAbsorption(t *testing.T) {
	// A logged operation that reads X between two writes of X pins the first
	// write: replay must reproduce the value the reader observed.
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(1, true)
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v1"))))
	mustAppend(t, l, NewOpRecord(op.NewLogical(op.FuncCopy, []byte("Y"),
		[]op.ObjectID{"X"}, []op.ObjectID{"Y"})))
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v2"))))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	sc, _ := l.Scan(0)
	recs, _ := sc.All()
	if len(recs) != 3 {
		t.Fatalf("scan: %d records", len(recs))
	}
	if recs[0].Type != RecOperation || !op.Equal(recs[0].Op.Values["X"], []byte("v1")) {
		t.Errorf("pinned write did not survive in full: %+v", recs[0])
	}
	if l.Stats().Absorbed != 0 {
		t.Errorf("Stats.Absorbed = %d, want 0", l.Stats().Absorbed)
	}
}

// rawAppend claims the next LSN and buffers rec on stream idx WITHOUT
// updating the absorption index — the two halves of Append split apart so
// tests can deterministically replay the cross-stream interleavings the
// scheduler produces: LSN claims are globally ordered, but each record's
// index update runs under its own stream mutex and can reach a shard out of
// LSN order.  Callers follow up with l.noteAbsorb in the order under test.
func rawAppend(t *testing.T, l *Log, idx int, rec *Record) streamRec {
	t.Helper()
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	set := l.lanes.Load()
	s := set.streams[idx]
	s.mu.Lock()
	defer s.mu.Unlock()
	lsn := op.SI(l.nextLSN.Add(1) - 1)
	rec.LSN = lsn
	if rec.Op != nil {
		rec.Op.LSN = lsn
	}
	var obj op.ObjectID
	if set.absorb {
		obj, _ = absorbTarget(rec)
	}
	return s.append(rec, lsn, obj)
}

func TestAbsorptionInvertedIndexOrder(t *testing.T) {
	// Regression for the cross-stream absorption race: two concurrent blind
	// writes to X land on different streams, and the higher-LSN write's index
	// update reaches the shard first.  The lower-LSN write must then be the
	// absorbed one; the buggy index absorbed whichever update arrived first,
	// tombstoning the LATER write so replay regressed X to the older value.
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(2, true)
	recOld := NewOpRecord(op.NewPhysicalWrite("X", []byte("old")))
	srOld := rawAppend(t, l, 0, recOld) // LSN 1
	recNew := NewOpRecord(op.NewPhysicalWrite("X", []byte("new")))
	srNew := rawAppend(t, l, 1, recNew) // LSN 2
	l.noteAbsorb(recNew, srNew)         // index updates arrive inverted
	l.noteAbsorb(recOld, srOld)
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	sc, _ := l.Scan(0)
	recs, err := sc.All()
	if err != nil || len(recs) != 2 {
		t.Fatalf("scan: %d records, %v", len(recs), err)
	}
	if recs[1].Type != RecOperation || !op.Equal(recs[1].Op.Values["X"], []byte("new")) {
		t.Fatalf("highest-LSN write did not survive in full: %+v", recs[1])
	}
	// The absorption itself must still happen — just with the right victim.
	if recs[0].Type != RecAbsorbed || recs[0].Absorbed.Object != "X" {
		t.Errorf("superseded lower-LSN write = %+v, want absorbed tombstone", recs[0])
	}
	if st := l.Stats(); st.Absorbed != 1 {
		t.Errorf("Stats.Absorbed = %d, want 1", st.Absorbed)
	}
}

func TestReadPinSurvivesIndexOrderInversion(t *testing.T) {
	// Regression for the observer-ordering race: a reader claims LSN 2 and
	// its index update reaches the shard BEFORE the LSN-1 writer registers
	// its candidate.  Without the per-object observer horizon the candidate
	// survived the reader, a later write absorbed record 1, and replaying
	// the reader observed the wrong value of X.
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(2, true)
	recW := NewOpRecord(op.NewPhysicalWrite("X", []byte("v1")))
	srW := rawAppend(t, l, 0, recW) // LSN 1
	recR := NewOpRecord(op.NewLogical(op.FuncCopy, []byte("Y"),
		[]op.ObjectID{"X"}, []op.ObjectID{"Y"}))
	srR := rawAppend(t, l, 1, recR) // LSN 2 reads X
	l.noteAbsorb(recR, srR)         // reader's update lands first
	l.noteAbsorb(recW, srW)
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v2")))) // LSN 3
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	sc, _ := l.Scan(0)
	recs, err := sc.All()
	if err != nil || len(recs) != 3 {
		t.Fatalf("scan: %d records, %v", len(recs), err)
	}
	if recs[0].Type != RecOperation || !op.Equal(recs[0].Op.Values["X"], []byte("v1")) {
		t.Fatalf("read-pinned write did not survive in full: %+v", recs[0])
	}
	if st := l.Stats(); st.Absorbed != 0 {
		t.Errorf("Stats.Absorbed = %d, want 0", st.Absorbed)
	}
}

func TestLateObserverCancelsRecordedAbsorption(t *testing.T) {
	// The mirror-image observer race: the absorption of record 1 by record 3
	// is already recorded in the index when the intervening reader's (LSN 2)
	// update finally reaches the shard.  The reader must cancel the recorded
	// pair, or replaying its logical op would observe v2 instead of v1.
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(2, true)
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v1")))) // LSN 1, candidate
	recR := NewOpRecord(op.NewLogical(op.FuncCopy, []byte("Y"),
		[]op.ObjectID{"X"}, []op.ObjectID{"Y"}))
	srR := rawAppend(t, l, 1, recR)                                       // LSN 2 reads X; update delayed
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v2")))) // LSN 3 absorbs 1
	l.noteAbsorb(recR, srR)                                               // late observer
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	sc, _ := l.Scan(0)
	recs, err := sc.All()
	if err != nil || len(recs) != 3 {
		t.Fatalf("scan: %d records, %v", len(recs), err)
	}
	if recs[0].Type != RecOperation || !op.Equal(recs[0].Op.Values["X"], []byte("v1")) {
		t.Fatalf("observed write was elided despite the late read pin: %+v", recs[0])
	}
	if st := l.Stats(); st.Absorbed != 0 {
		t.Errorf("Stats.Absorbed = %d, want 0", st.Absorbed)
	}
}

func TestStreamConcurrentReadersWritersReplayConsistent(t *testing.T) {
	// Race stress for the observer horizon: concurrent blind writers on X and
	// logical readers of X.  Replaying the durable log, every reader must
	// observe exactly the value of the highest-LSN write below it — i.e. no
	// record a reader depends on was elided — and X must end at the value of
	// its overall highest-LSN write.
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(4, true)
	const writers, readers, perG = 4, 4, 100
	var mu sync.Mutex
	writes := make(map[op.SI][]byte)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				val := []byte{byte(g), byte(i)}
				lsn, err := l.AppendOp(op.NewPhysicalWrite("X", val))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				writes[lsn] = val
				mu.Unlock()
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := []byte(fmt.Sprintf("Y%d", g))
			for i := 0; i < perG; i++ {
				o := op.NewLogical(op.FuncCopy, dst, []op.ObjectID{"X"}, []op.ObjectID{op.ObjectID(dst)})
				if _, err := l.AppendOp(o); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	sc, err := l.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if want := (writers + readers) * perG; len(recs) != want {
		t.Fatalf("durable records = %d, want %d", len(recs), want)
	}
	// wantAt returns the value a record at lsn must observe for X: that of
	// the highest write LSN strictly below it.
	wantAt := func(lsn op.SI) []byte {
		var best op.SI
		for w := range writes {
			if w < lsn && w > best {
				best = w
			}
		}
		return writes[best]
	}
	var cur []byte
	for _, rec := range recs {
		switch {
		case rec.Type == RecAbsorbed:
			// elided write: no state change
		case rec.Op.Kind == op.KindPhysicalWrite:
			cur = rec.Op.Values["X"]
		case rec.Op.Kind == op.KindLogical:
			if want := wantAt(rec.LSN); !op.Equal(cur, want) {
				t.Fatalf("reader at LSN %d observes X=%v, want %v: an observed write was elided",
					rec.LSN, cur, want)
			}
		default:
			t.Fatalf("unexpected record %+v", rec)
		}
	}
	if want := wantAt(op.SI(len(recs)) + 1); !op.Equal(cur, want) {
		t.Errorf("final X = %v, want %v (highest-LSN write)", cur, want)
	}
}

func TestShippedRecordsNeverAbsorbed(t *testing.T) {
	// Build shipped frames from a source log whose absorption is off, then
	// replay them into a standby with absorption on: AppendShipped bypasses
	// the stream lanes and the absorption index entirely, so both writes to X
	// survive byte-for-byte.
	src, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, src, NewOpRecord(op.NewPhysicalWrite("X", []byte("v1"))))
	mustAppend(t, src, NewOpRecord(op.NewPhysicalWrite("X", []byte("v2"))))
	if err := src.Force(); err != nil {
		t.Fatal(err)
	}
	sc, _ := src.Scan(0)
	recs, _ := sc.All()
	if len(recs) != 2 {
		t.Fatalf("source scan: %d records", len(recs))
	}

	dst, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	dst.SetStreams(4, true)
	for _, rec := range recs {
		if err := dst.AppendShipped(rec); err != nil {
			t.Fatalf("AppendShipped: %v", err)
		}
	}
	if err := dst.Force(); err != nil {
		t.Fatal(err)
	}
	sc2, _ := dst.Scan(0)
	got, _ := sc2.All()
	if len(got) != 2 {
		t.Fatalf("standby scan: %d records", len(got))
	}
	for i, rec := range got {
		if rec.Type != RecOperation {
			t.Errorf("shipped record %d replaced by %s", i, rec.Type)
		}
	}
	if dst.Stats().Absorbed != 0 {
		t.Errorf("standby Stats.Absorbed = %d, want 0", dst.Stats().Absorbed)
	}
}

func TestAbsorptionCancelledWhenAbsorberOutsideHorizon(t *testing.T) {
	// Force a horizon that covers the superseded write but not its absorber:
	// the write must merge in full, because a crash after this force must
	// still recover its value.
	dev := NewMemDevice()
	l, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(1, true)
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v1"))))
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte("v2"))))
	if err := l.ForceThrough(1); err != nil {
		t.Fatal(err)
	}
	l.Crash()
	l2, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := l2.Scan(0)
	recs, _ := sc.All()
	if len(recs) != 1 {
		t.Fatalf("after crash: %d durable records, want 1", len(recs))
	}
	if recs[0].Type != RecOperation || !op.Equal(recs[0].Op.Values["X"], []byte("v1")) {
		t.Fatalf("durable record = %+v, want full v1 write", recs[0])
	}
}

// replayState applies a durable record stream to a flat object map, skipping
// absorbed tombstones — the reference model for absorption equivalence.
func replayState(t *testing.T, recs []*Record) map[op.ObjectID][]byte {
	t.Helper()
	state := make(map[op.ObjectID][]byte)
	for _, rec := range recs {
		if rec.Type != RecOperation {
			continue
		}
		o := rec.Op
		switch o.Kind {
		case op.KindPhysicalWrite, op.KindIdentityWrite, op.KindCreate:
			for _, x := range o.WriteSet {
				state[x] = append([]byte(nil), o.Values[x]...)
			}
		case op.KindDelete:
			for _, x := range o.WriteSet {
				delete(state, x)
			}
		case op.KindLogical:
			switch o.Func {
			case op.FuncCopy:
				state[op.ObjectID(o.Params)] = append([]byte(nil), state[o.ReadSet[0]]...)
			default:
				t.Fatalf("replayState: unsupported func %q", o.Func)
			}
		default:
			t.Fatalf("replayState: unsupported kind %s", o.Kind)
		}
	}
	return state
}

func TestRandomAbsorptionReplayEquivalence(t *testing.T) {
	// Property: for any workload and force schedule, replaying the absorbed
	// log yields exactly the state of replaying the unabsorbed log, and the
	// absorbed log is never larger.
	seeds := []int64{}
	if *streamSeedFlag != 0 {
		seeds = append(seeds, *streamSeedFlag)
	} else {
		for s := int64(1); s <= 25; s++ {
			seeds = append(seeds, s)
		}
	}
	for _, seed := range seeds {
		run := func(absorb bool) ([]*Record, int) {
			data := runStreamWorkload(t, seed, 3, absorb)
			dev := NewMemDevice()
			if err := dev.Rewrite(data); err != nil {
				t.Fatal(err)
			}
			l, err := New(dev)
			if err != nil {
				t.Fatalf("seed %d: reopen absorbed=%v: %v", seed, absorb, err)
			}
			sc, err := l.Scan(0)
			if err != nil {
				t.Fatal(err)
			}
			recs, err := sc.All()
			if err != nil {
				t.Fatal(err)
			}
			return recs, len(data)
		}
		plain, plainBytes := run(false)
		absorbed, absorbedBytes := run(true)
		if len(plain) != len(absorbed) {
			t.Fatalf("seed %d: record counts differ: %d vs %d (absorption must preserve LSN density)",
				seed, len(plain), len(absorbed))
		}
		if absorbedBytes > plainBytes {
			t.Errorf("seed %d: absorbed log larger than plain (%d > %d)", seed, absorbedBytes, plainBytes)
		}
		want := replayState(t, plain)
		got := replayState(t, absorbed)
		if len(want) != len(got) {
			t.Fatalf("seed %d: replayed state sizes differ: %d vs %d", seed, len(want), len(got))
		}
		for k, v := range want {
			if !op.Equal(got[k], v) {
				t.Errorf("seed %d: object %q: absorbed replay %q, want %q", seed, k, got[k], v)
			}
		}
	}
}
