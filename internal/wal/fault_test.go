// Torn-tail, bit-flip, reorder, and transient-retry coverage for the WAL
// through the fault-injection layer.  This lives in package wal_test because
// internal/fault imports internal/wal.
package wal_test

import (
	"errors"
	"testing"
	"time"

	"logicallog/internal/fault"
	"logicallog/internal/op"
	"logicallog/internal/wal"
)

// longName makes the faulted record's frame comfortably longer than
// MaxRecordHeader so every cut length 1..MaxRecordHeader lands inside it.
const longName = op.ObjectID("torn-tail-padding-object")

func mustAppendRec(t *testing.T, l *wal.Log, rec *wal.Record) op.SI {
	t.Helper()
	lsn, err := l.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

// TestTornTailEveryLength tears the final append at every prefix length
// 1..MaxRecordHeader bytes and checks, for each: the scan stops before the
// torn record, restart over the device resumes at the last whole record,
// and Restart trims the debris so the log keeps working.
func TestTornTailEveryLength(t *testing.T) {
	for cut := 1; cut <= wal.MaxRecordHeader; cut++ {
		plan := fault.NewPlan(fault.Point{
			Chan: fault.ChanWAL, Index: 1, Kind: fault.KindTorn, Arg: cut,
		})
		dev := plan.WrapDevice(wal.NewMemDevice())
		l, err := wal.New(dev)
		if err != nil {
			t.Fatal(err)
		}
		mustAppendRec(t, l, wal.NewFlushRecord("A", 1))
		if err := l.Force(); err != nil {
			t.Fatalf("cut %d: clean force failed: %v", cut, err)
		}
		mustAppendRec(t, l, wal.NewFlushRecord(longName, 2))
		err = l.Force()
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("cut %d: force error = %v, want injected fault", cut, err)
		}

		// The torn record must not be scannable.
		plan.Heal()
		sc, err := l.Scan(0)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := sc.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].LSN != 1 {
			t.Fatalf("cut %d: scan past torn tail: %v", cut, recs)
		}

		// A fresh Log over the torn device resumes at the whole record.
		l2, err := wal.New(dev)
		if err != nil {
			t.Fatal(err)
		}
		if l2.StableLSN() != 1 {
			t.Fatalf("cut %d: restart StableLSN = %d, want 1", cut, l2.StableLSN())
		}

		// In-process restart trims the debris and reuses the lost LSN.
		l.Crash()
		if err := l.Restart(); err != nil {
			t.Fatalf("cut %d: restart: %v", cut, err)
		}
		lsn := mustAppendRec(t, l, wal.NewFlushRecord("B", 3))
		if lsn != 2 {
			t.Fatalf("cut %d: post-trim LSN = %d, want 2", cut, lsn)
		}
		if err := l.Force(); err != nil {
			t.Fatalf("cut %d: post-trim force: %v", cut, err)
		}
		sc2, err := l.Scan(0)
		if err != nil {
			t.Fatal(err)
		}
		recs2, err := sc2.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != 2 || recs2[1].LSN != 2 {
			t.Fatalf("cut %d: after trim+append: %v", cut, recs2)
		}
	}
}

// TestTornTailFullAppendLosesOnlyAck covers the "committed but unacked"
// tear: every byte of the append lands but the caller sees a crash.
// Restart must advance the durable horizon over the landed records.
func TestTornTailFullAppendLosesOnlyAck(t *testing.T) {
	plan := fault.NewPlan(fault.Point{
		Chan: fault.ChanWAL, Index: 0, Kind: fault.KindTorn, Arg: 1 << 20,
	})
	dev := plan.WrapDevice(wal.NewMemDevice())
	l, err := wal.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	mustAppendRec(t, l, wal.NewFlushRecord("A", 1))
	mustAppendRec(t, l, wal.NewFlushRecord("B", 2))
	if err := l.Force(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("force error = %v, want injected fault", err)
	}
	plan.Heal()
	l.Crash()
	if err := l.Restart(); err != nil {
		t.Fatal(err)
	}
	if l.StableLSN() != 2 {
		t.Errorf("StableLSN = %d, want 2 (both records landed)", l.StableLSN())
	}
	if lsn := mustAppendRec(t, l, wal.NewFlushRecord("C", 3)); lsn != 3 {
		t.Errorf("next LSN = %d, want 3", lsn)
	}
}

// TestBitFlipStopsScan flips one bit in the final append: the CRC must
// reject the frame and Restart must trim it.
func TestBitFlipStopsScan(t *testing.T) {
	plan := fault.NewPlan(fault.Point{
		Chan: fault.ChanWAL, Index: 1, Kind: fault.KindBitFlip, Arg: 99,
	})
	dev := plan.WrapDevice(wal.NewMemDevice())
	l, err := wal.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	mustAppendRec(t, l, wal.NewFlushRecord("A", 1))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	mustAppendRec(t, l, wal.NewFlushRecord("B", 2))
	if err := l.Force(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("force error = %v, want injected fault", err)
	}
	plan.Heal()
	sc, err := l.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("scan past flipped frame: %v", recs)
	}
	l.Crash()
	if err := l.Restart(); err != nil {
		t.Fatal(err)
	}
	if l.StableLSN() != 1 {
		t.Errorf("StableLSN = %d, want 1", l.StableLSN())
	}
}

// TestReorderedBatchTrimsAtGap drops a middle frame of a three-record
// group-commit append: the surviving suffix frames are unreachable past the
// LSN gap and must be trimmed, while frames before the gap stay durable.
func TestReorderedBatchTrimsAtGap(t *testing.T) {
	plan := fault.NewPlan(fault.Point{
		Chan: fault.ChanWAL, Index: 1, Kind: fault.KindReorder, Arg: 1,
	})
	dev := plan.WrapDevice(wal.NewMemDevice())
	l, err := wal.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	mustAppendRec(t, l, wal.NewFlushRecord("A", 1))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// One append carrying LSNs 2,3,4; frame index 1 (LSN 3) is dropped.
	mustAppendRec(t, l, wal.NewFlushRecord("B", 2))
	mustAppendRec(t, l, wal.NewFlushRecord("C", 3))
	mustAppendRec(t, l, wal.NewFlushRecord("D", 4))
	if err := l.Force(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("force error = %v, want injected fault", err)
	}
	plan.Heal()
	sc, err := l.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].LSN != 2 {
		t.Fatalf("scan across LSN gap: %v", recs)
	}
	l.Crash()
	if err := l.Restart(); err != nil {
		t.Fatal(err)
	}
	if got := l.StableLSN(); got != 2 {
		t.Errorf("StableLSN = %d, want 2 (LSN 4 is beyond the gap)", got)
	}
}

// TestReorderedFirstAppendWipesDevice drops the leading frame of the very
// first append: nothing on the device connects to the log's first LSN, so
// Restart must distrust all of it.
func TestReorderedFirstAppendWipesDevice(t *testing.T) {
	plan := fault.NewPlan(fault.Point{
		Chan: fault.ChanWAL, Index: 0, Kind: fault.KindReorder, Arg: 0,
	})
	dev := plan.WrapDevice(wal.NewMemDevice())
	l, err := wal.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	mustAppendRec(t, l, wal.NewFlushRecord("A", 1))
	mustAppendRec(t, l, wal.NewFlushRecord("B", 2))
	if err := l.Force(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("force error = %v, want injected fault", err)
	}
	plan.Heal()
	l.Crash()
	if err := l.Restart(); err != nil {
		t.Fatal(err)
	}
	if got := l.StableLSN(); got != 0 {
		t.Errorf("StableLSN = %d, want 0 (orphaned suffix must be wiped)", got)
	}
	sz, err := dev.Size()
	if err != nil {
		t.Fatal(err)
	}
	if sz != 0 {
		t.Errorf("device size = %d after trim, want 0", sz)
	}
}

// TestForceRetriesTransientFaults checks the capped-backoff retry absorbs
// consecutive transient EIOs up to the policy bound, and gives up past it.
func TestForceRetriesTransientFaults(t *testing.T) {
	plan := fault.NewPlan(fault.Point{
		Chan: fault.ChanWAL, Index: 0, Kind: fault.KindTransient, Arg: 3,
	})
	dev := plan.WrapDevice(wal.NewMemDevice())
	l, err := wal.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.SetRetryPolicy(3, 10*time.Microsecond, 100*time.Microsecond)
	mustAppendRec(t, l, wal.NewFlushRecord("A", 1))
	if err := l.Force(); err != nil {
		t.Fatalf("force with retry: %v", err)
	}
	if l.StableLSN() != 1 {
		t.Errorf("StableLSN = %d, want 1", l.StableLSN())
	}
	if got := l.Stats().TransientRetries; got != 3 {
		t.Errorf("TransientRetries = %d, want 3", got)
	}

	// Four consecutive EIOs exceed a 3-retry budget.
	plan2 := fault.NewPlan(fault.Point{
		Chan: fault.ChanWAL, Index: 0, Kind: fault.KindTransient, Arg: 4,
	})
	l2, err := wal.New(plan2.WrapDevice(wal.NewMemDevice()))
	if err != nil {
		t.Fatal(err)
	}
	l2.SetRetryPolicy(3, 10*time.Microsecond, 100*time.Microsecond)
	mustAppendRec(t, l2, wal.NewFlushRecord("A", 1))
	err = l2.Force()
	if err == nil || !wal.IsTransient(err) {
		t.Fatalf("force error = %v, want transient failure after retries exhausted", err)
	}
}

// TestStreamMergeBoundaryCrash arms the walstream channel: the group-commit
// leader merges the per-core streams into a staged batch, the machine dies
// before the batch reaches the device, and recovery must see exactly the
// previously forced prefix — the staged batch is volatile, so merged-order
// operation is schedule-equivalent to single-stream operation.
func TestStreamMergeBoundaryCrash(t *testing.T) {
	plan := fault.NewPlan(fault.Point{
		Chan: fault.ChanWALStream, Index: 1, Kind: fault.KindCrash,
	})
	dev := plan.WrapDevice(wal.NewMemDevice())
	l, err := wal.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.SetStreams(4, true)
	l.SetMergeProbe(plan.MergeProbe())

	// First batch merges and forces cleanly (stream boundary 0).
	mustAppendRec(t, l, wal.NewOpRecord(op.NewPhysicalWrite("X", []byte("v1"))))
	if err := l.Force(); err != nil {
		t.Fatalf("clean force: %v", err)
	}

	// Second batch is staged at boundary 1 and never hits the device.
	mustAppendRec(t, l, wal.NewOpRecord(op.NewPhysicalWrite("X", []byte("v2"))))
	mustAppendRec(t, l, wal.NewOpRecord(op.NewPhysicalWrite("Y", []byte("w"))))
	if err := l.Force(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("force error = %v, want injected fault", err)
	}
	if l.StableLSN() != 1 {
		t.Errorf("StableLSN = %d, want 1 after merge-boundary crash", l.StableLSN())
	}

	// The machine stopped: recovery reopens the device and must find only
	// the forced prefix, with no trace of the staged batch.
	l.Crash()
	plan.Heal()
	l2, err := wal.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := l2.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("post-crash durable log = %v, want only LSN 1", recs)
	}
	// The restarted log reuses the lost LSNs, keeping the stream dense.
	if lsn := mustAppendRec(t, l2, wal.NewOpRecord(op.NewPhysicalWrite("Z", []byte("z")))); lsn != 2 {
		t.Errorf("post-crash LSN = %d, want 2", lsn)
	}
}
