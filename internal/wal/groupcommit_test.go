package wal

import (
	"sync"
	"testing"
	"time"

	"logicallog/internal/op"
)

// gatedDevice wraps a MemDevice and blocks the first Append until released,
// so a test can pile followers up behind an in-flight leader force.
type gatedDevice struct {
	*MemDevice
	started chan struct{} // closed when the gated Append begins
	release chan struct{} // Append proceeds once this closes
	once    sync.Once
}

func newGatedDevice() *gatedDevice {
	return &gatedDevice{
		MemDevice: NewMemDevice(),
		started:   make(chan struct{}),
		release:   make(chan struct{}),
	}
}

func (d *gatedDevice) Append(p []byte) error {
	d.once.Do(func() {
		close(d.started)
		<-d.release
	})
	return d.MemDevice.Append(p)
}

// TestGroupCommitCoalesces pins the leader/follower protocol: committers
// that arrive while a leader's device write is in flight must not issue
// their own writes once the leader (or a single successor) covers them.
func TestGroupCommitCoalesces(t *testing.T) {
	dev := newGatedDevice()
	l, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}

	// One record the leader will force, blocking inside the device.
	leaderLSN, err := l.AppendOp(op.NewPhysicalWrite("x", []byte("v0")))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := l.ForceThrough(leaderLSN); err != nil {
			t.Error(err)
		}
	}()
	<-dev.started // leader is inside the device write

	// Followers append (their records are NOT in the leader's buffer) and
	// force; they must wait, and at most one of them becomes the next
	// leader while the rest coalesce onto its write.
	const followers = 6
	for i := 0; i < followers; i++ {
		lsn, err := l.AppendOp(op.NewPhysicalWrite("x", []byte{byte(i)}))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(lsn op.SI) {
			defer wg.Done()
			if err := l.ForceThrough(lsn); err != nil {
				t.Error(err)
			}
		}(lsn)
	}
	// Give the followers a moment to block on the in-flight force.
	time.Sleep(50 * time.Millisecond)
	close(dev.release)
	wg.Wait()

	st := l.Stats()
	if st.Forces >= int64(followers+1) {
		t.Fatalf("Forces = %d: no coalescing across %d committers", st.Forces, followers+1)
	}
	if st.Forces+st.ForcesCoalesced < 2 {
		t.Fatalf("Forces=%d ForcesCoalesced=%d: follower accounting lost", st.Forces, st.ForcesCoalesced)
	}
	if got := l.StableLSN(); got != leaderLSN+followers {
		t.Fatalf("StableLSN = %d, want %d", got, leaderLSN+followers)
	}
	// Everything must actually be on the device, in order.
	sc, err := l.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != followers+1 {
		t.Fatalf("device holds %d records, want %d", len(recs), followers+1)
	}
	for i, rec := range recs {
		if rec.LSN != op.SI(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
}

// TestStatsSnapshotIsDeepClone pins the Stats race fix: a snapshot taken
// concurrently with appenders must share no maps with the live stats.
func TestStatsSnapshotIsDeepClone(t *testing.T) {
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendOp(op.NewPhysicalWrite("x", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	snap := l.Stats()
	before := snap.Records[RecOperation]
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			if _, err := l.AppendOp(op.NewPhysicalWrite("x", []byte("v"))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Reading the snapshot while the appender runs must be race-free (the
	// -race build enforces this) and must not observe the appender.
	for i := 0; i < 100; i++ {
		if got := snap.Records[RecOperation]; got != before {
			t.Fatalf("snapshot mutated: %d -> %d", before, got)
		}
		_ = l.Stats()
	}
	<-done
	if got := l.Stats().Records[RecOperation]; got != before+500 {
		t.Fatalf("live stats = %d, want %d", got, before+500)
	}
}
