package wal

import (
	"sync"
	"testing"

	"logicallog/internal/op"
)

// TestConcurrentAppendForce hammers the log from multiple goroutines:
// appenders, forcers, and scanners.  Run with -race; the invariants checked
// are dense unique LSNs and prefix-durability.
func TestConcurrentAppendForce(t *testing.T) {
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	const (
		appenders = 4
		perWorker = 200
	)
	var wg sync.WaitGroup
	lsnCh := make(chan op.SI, appenders*perWorker)
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lsn, err := l.Append(NewFlushRecord(op.ObjectID("x"), op.SI(i)))
				if err != nil {
					t.Error(err)
					return
				}
				lsnCh <- lsn
				if i%16 == 0 {
					if err := l.Force(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent scanners (over durable snapshots).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sc, err := l.Scan(0)
				if err != nil {
					t.Error(err)
					return
				}
				recs, err := sc.All()
				if err != nil {
					t.Error(err)
					return
				}
				for j, rec := range recs {
					if rec.LSN != op.SI(j+1) {
						t.Errorf("scan gap at %d: LSN %d", j, rec.LSN)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(lsnCh)

	seen := map[op.SI]bool{}
	for lsn := range lsnCh {
		if seen[lsn] {
			t.Fatalf("duplicate LSN %d", lsn)
		}
		seen[lsn] = true
	}
	if len(seen) != appenders*perWorker {
		t.Fatalf("assigned %d LSNs, want %d", len(seen), appenders*perWorker)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if l.StableLSN() != op.SI(appenders*perWorker) {
		t.Errorf("StableLSN = %d", l.StableLSN())
	}
}
