package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"logicallog/internal/op"
)

// benchLog builds a log with n operation records carrying valSize-byte
// values (the worst case for decoder allocation).
func benchLog(b *testing.B, n, valSize int) *Log {
	b.Helper()
	l, err := New(NewMemDevice())
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, valSize)
	for i := 0; i < n; i++ {
		x := op.ObjectID(fmt.Sprintf("obj%04d", i%64))
		if _, err := l.AppendOp(op.NewPhysicalWrite(x, val)); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkWALScan measures the redo scan's decode path.  Run with -benchmem:
// the aliased decoder keeps per-record allocations flat in the value size.
func BenchmarkWALScan(b *testing.B) {
	for _, valSize := range []int{64, 4 << 10} {
		b.Run(fmt.Sprintf("val=%dB", valSize), func(b *testing.B) {
			l := benchLog(b, 2048, valSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc, err := l.Scan(0)
				if err != nil {
					b.Fatal(err)
				}
				records := 0
				for {
					rec, err := sc.Next()
					if errors.Is(err, io.EOF) {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					if rec.Type == RecOperation {
						records++
					}
				}
				if records != 2048 {
					b.Fatalf("scanned %d records, want 2048", records)
				}
			}
		})
	}
}

// slowDevice models a device with fsync-like append latency, the regime
// group commit exists for.
type slowDevice struct {
	*MemDevice
	delay time.Duration
}

func (d *slowDevice) Append(p []byte) error {
	time.Sleep(d.delay)
	return d.MemDevice.Append(p)
}

// BenchmarkWALGroupCommit measures concurrent committers forcing a log on a
// device with 20µs append latency.  Each iteration appends one record per
// committer and forces it; group commit coalesces the device writes, which
// the Forces/ForcesCoalesced stats expose.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, committers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("committers=%d", committers), func(b *testing.B) {
			l, err := New(&slowDevice{MemDevice: NewMemDevice(), delay: 20 * time.Microsecond})
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 128)
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < committers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					x := op.ObjectID(fmt.Sprintf("c%02d", c))
					for i := 0; i < b.N; i++ {
						lsn, err := l.AppendOp(op.NewPhysicalWrite(x, val))
						if err != nil {
							b.Error(err)
							return
						}
						if err := l.ForceThrough(lsn); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			b.StopTimer()
			st := l.Stats()
			total := st.Forces + st.ForcesCoalesced
			if total > 0 {
				b.ReportMetric(float64(st.ForcesCoalesced)/float64(total), "coalesced-frac")
			}
			b.ReportMetric(float64(st.Forces), "device-forces")
		})
	}
}
