package wal

import (
	"strings"
	"testing"

	"logicallog/internal/op"
)

func appendOps(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", []byte{byte(i)})))
	}
}

func TestRetentionClampsTruncate(t *testing.T) {
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, 10)
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}

	horizon := op.SI(4)
	release := l.RegisterRetention("standby", func() op.SI { return horizon })

	if err := l.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if got := l.FirstLSN(); got != 4 {
		t.Errorf("FirstLSN = %d, want clamp at 4", got)
	}
	if got := l.Stats().TruncationsClamped; got != 1 {
		t.Errorf("TruncationsClamped = %d, want 1", got)
	}

	// The hook is consulted live: once the horizon advances, truncation
	// follows it.
	horizon = 7
	if err := l.Truncate(9); err != nil {
		t.Fatal(err)
	}
	if got := l.FirstLSN(); got != 7 {
		t.Errorf("FirstLSN = %d, want clamp at 7", got)
	}

	// Released, the hook no longer constrains anything.
	release()
	if err := l.Truncate(9); err != nil {
		t.Fatal(err)
	}
	if got := l.FirstLSN(); got != 9 {
		t.Errorf("FirstLSN after release = %d, want 9", got)
	}
}

func TestRetentionMinOverHooks(t *testing.T) {
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, 10)
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	relA := l.RegisterRetention("backup", func() op.SI { return 6 })
	relB := l.RegisterRetention("standby", func() op.SI { return 3 })
	defer relA()
	defer relB()
	if err := l.Truncate(9); err != nil {
		t.Fatal(err)
	}
	if got := l.FirstLSN(); got != 3 {
		t.Errorf("FirstLSN = %d, want the min hook horizon 3", got)
	}
	// A zero horizon means "no constraint", not "retain everything".
	relC := l.RegisterRetention("idle", func() op.SI { return 0 })
	defer relC()
	if err := l.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if got := l.FirstLSN(); got != 3 {
		t.Errorf("FirstLSN = %d, want 3 (zero hook ignored, min still 3)", got)
	}
}

func TestAppendShippedAdoptsOriginAndEnforcesOrder(t *testing.T) {
	// Build a source log whose records we re-frame, as a sender would.
	src, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, src, 6)
	if err := src.Force(); err != nil {
		t.Fatal(err)
	}
	var recs []*Record
	sc, err := src.Scan(1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, err := sc.Next()
		if err != nil {
			break
		}
		recs = append(recs, rec)
	}
	if len(recs) != 6 {
		t.Fatalf("scanned %d records", len(recs))
	}

	dst, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	// A fresh log adopts the stream origin — here mid-stream, as a standby
	// bootstrapped from a backup would.
	if err := dst.AppendShipped(recs[3]); err != nil {
		t.Fatalf("adopting first shipped record: %v", err)
	}
	if got := dst.FirstLSN(); got != recs[3].LSN {
		t.Errorf("FirstLSN = %d, want adopted origin %d", got, recs[3].LSN)
	}
	// A duplicate and a gap are both LSN errors; the stream is strict here
	// (dup/gap tolerance lives in the ship layer, which filters by LSN).
	if err := dst.AppendShipped(recs[3]); err == nil {
		t.Error("duplicate shipped record accepted")
	}
	if err := dst.AppendShipped(recs[5]); err == nil {
		t.Error("gapped shipped record accepted")
	}
	if err := dst.AppendShipped(recs[4]); err != nil {
		t.Fatalf("in-order shipped record: %v", err)
	}
	if err := dst.AppendShipped(&Record{Type: RecOperation, Op: op.NewPhysicalWrite("X", nil)}); err == nil ||
		!strings.Contains(err.Error(), "no LSN") {
		t.Errorf("LSN-less shipped record: %v", err)
	}

	// Shipped records force and scan like ordinary appends.
	if err := dst.Force(); err != nil {
		t.Fatal(err)
	}
	if got := dst.StableLSN(); got != recs[4].LSN {
		t.Errorf("StableLSN = %d, want %d", got, recs[4].LSN)
	}
	sc2, err := dst.Scan(dst.FirstLSN())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		rec, err := sc2.Next()
		if err != nil {
			break
		}
		if rec.LSN != recs[3+n].LSN {
			t.Errorf("scan %d: LSN %d, want %d", n, rec.LSN, recs[3+n].LSN)
		}
		n++
	}
	if n != 2 {
		t.Errorf("scanned %d shipped records, want 2", n)
	}

	// An adopted log that crashes before forcing reverts to virgin state and
	// can re-adopt (the bootstrapped-standby restart path).
	dev := NewMemDevice()
	fresh, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.AppendShipped(recs[2]); err != nil {
		t.Fatal(err)
	}
	fresh.Crash()
	fresh2, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh2.AppendShipped(recs[4]); err != nil {
		t.Errorf("re-adopting a different origin after crash: %v", err)
	}
}

func TestAppendShippedCountsStats(t *testing.T) {
	src, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	lsn := mustAppend(t, src, NewOpRecord(op.NewPhysicalWrite("X", []byte("abc"))))
	if err := src.Force(); err != nil {
		t.Fatal(err)
	}
	sc, err := src.Scan(lsn)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}

	dst, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.AppendShipped(rec); err != nil {
		t.Fatal(err)
	}
	st := dst.Stats()
	if st.Records[RecOperation] != 1 {
		t.Errorf("Records[op] = %d, want 1", st.Records[RecOperation])
	}
	if st.PayloadBytes[RecOperation] == 0 || st.BytesAppended == 0 {
		t.Errorf("payload accounting missing: %+v", st)
	}
}
