package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"logicallog/internal/op"
)

// On-device framing: every record is
//
//	[4-byte little-endian payload length][4-byte CRC32C of payload][payload]
//
// A scan stops cleanly at a torn tail (truncated frame or CRC mismatch in
// the final frame position), which is how real WALs discover the end of log
// after a crash.
//
// Payload:
//
//	type   uint8
//	lsn    uvarint
//	body   (per type)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameOverhead is the per-record framing cost in bytes.
const frameOverhead = 8

// MaxRecordHeader bounds the bytes of a frame before any record body: the
// framing plus the payload's type byte and worst-case LSN varint.  A torn
// append of fewer than MaxRecordHeader bytes can cut anywhere inside this
// prefix; the exhaustive torn-tail tests cover every such length.
const MaxRecordHeader = frameOverhead + 1 + binary.MaxVarintLen64

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf = append(e.buf, tmp[:n]...)
}
func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) str(s string) { e.bytes([]byte(s)) }
func (e *encoder) ids(ids []op.ObjectID) {
	e.uvarint(uint64(len(ids)))
	for _, id := range ids {
		e.str(string(id))
	}
}
func (e *encoder) rsis(s []ObjectRSI) {
	e.uvarint(uint64(len(s)))
	for _, r := range s {
		e.str(string(r.ID))
		e.uvarint(uint64(r.RSI))
	}
}

type decoder struct {
	buf []byte
	// alias, when set, makes bytes() return subslices of buf instead of
	// copies.  Safe only when buf is immutable and outlives the record
	// (the Scanner's snapshot qualifies); it removes the dominant
	// per-record allocation of the redo scan.
	alias bool
}

var errCorrupt = fmt.Errorf("wal: corrupt record payload")

func (d *decoder) u8() (uint8, error) {
	if len(d.buf) < 1 {
		return 0, errCorrupt
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v, nil
}
func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, errCorrupt
	}
	d.buf = d.buf[n:]
	return v, nil
}
func (d *decoder) bytes() ([]byte, error) {
	l, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.buf)) < l {
		return nil, errCorrupt
	}
	var out []byte
	if d.alias {
		out = d.buf[:l:l]
	} else {
		out = append([]byte(nil), d.buf[:l]...)
	}
	d.buf = d.buf[l:]
	return out, nil
}
func (d *decoder) str() (string, error) {
	b, err := d.bytes()
	return string(b), err
}
func (d *decoder) ids() ([]op.ObjectID, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)) { // each id costs ≥1 byte; reject absurd counts
		return nil, errCorrupt
	}
	out := make([]op.ObjectID, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		out = append(out, op.ObjectID(s))
	}
	return out, nil
}
func (d *decoder) rsis() ([]ObjectRSI, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)) {
		return nil, errCorrupt
	}
	out := make([]ObjectRSI, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		r, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, ObjectRSI{ID: op.ObjectID(s), RSI: op.SI(r)})
	}
	return out, nil
}

// EncodeRecord serializes a record payload (without framing).
func EncodeRecord(r *Record) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	e := &encoder{}
	encodePayload(e, r)
	return e.buf, nil
}

// encodePayload serializes a validated record into e.  It is the single
// source of the payload byte layout: the heap path (EncodeRecord) and the
// arena path (AppendFrame) both route through it, so the durable format is
// byte-identical no matter which encoder produced it.
func encodePayload(e *encoder, r *Record) {
	e.u8(uint8(r.Type))
	e.uvarint(uint64(r.LSN))
	switch r.Type {
	case RecOperation:
		o := r.Op
		e.u8(uint8(o.Kind))
		e.str(string(o.Func))
		e.bytes(o.Params)
		e.ids(o.ReadSet)
		e.ids(o.WriteSet)
		e.ids(o.Deletes)
		e.uvarint(uint64(len(o.Values)))
		for _, x := range o.WriteSet { // deterministic order
			if v, ok := o.Values[x]; ok {
				e.str(string(x))
				e.bytes(v)
			}
		}
	case RecInstall:
		e.rsis(r.Install.Flushed)
		e.rsis(r.Install.Unflushed)
		e.uvarint(uint64(len(r.Install.Ops)))
		for _, l := range r.Install.Ops {
			e.uvarint(uint64(l))
		}
	case RecFlush:
		e.str(string(r.Flush.Object))
		e.uvarint(uint64(r.Flush.VSI))
	case RecCheckpoint:
		e.uvarint(uint64(len(r.Checkpoint.Dirty)))
		for _, d := range r.Checkpoint.Dirty {
			e.str(string(d.ID))
			e.uvarint(uint64(d.RSI))
		}
	case RecAbsorbed:
		e.str(string(r.Absorbed.Object))
		e.uvarint(uint64(r.Absorbed.Elided))
		e.uvarint(uint64(r.Absorbed.By))
	}
}

// AppendFrame appends the framed encoding of a validated record to buf and
// returns the extended slice.  When buf has enough spare capacity (an arena
// chunk) the frame is built in place with no allocation: the 8 framing bytes
// are reserved, the payload is encoded after them, and length + CRC are
// backfilled.  The caller must have validated r; the byte layout matches
// Frame(EncodeRecord(r)) exactly.
func AppendFrame(buf []byte, r *Record) []byte {
	start := len(buf)
	var hdr [frameOverhead]byte
	e := &encoder{buf: append(buf, hdr[:]...)}
	encodePayload(e, r)
	out := e.buf
	payload := out[start+frameOverhead:]
	binary.LittleEndian.PutUint32(out[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[start+4:start+8], crc32.Checksum(payload, crcTable))
	return out
}

// DecodeRecord parses a record payload produced by EncodeRecord.  The
// returned record owns its memory (payload may be reused by the caller).
func DecodeRecord(payload []byte) (*Record, error) {
	return decodeRecord(payload, false)
}

// decodeRecordAliased parses a record whose byte fields alias payload.  The
// caller must guarantee payload is immutable for the record's lifetime.
func decodeRecordAliased(payload []byte) (*Record, error) {
	return decodeRecord(payload, true)
}

func decodeRecord(payload []byte, alias bool) (*Record, error) {
	d := &decoder{buf: payload, alias: alias}
	t, err := d.u8()
	if err != nil {
		return nil, err
	}
	lsn, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	r := &Record{LSN: op.SI(lsn), Type: RecordType(t)}
	switch r.Type {
	case RecOperation:
		o := &op.Operation{LSN: r.LSN}
		k, err := d.u8()
		if err != nil {
			return nil, err
		}
		o.Kind = op.Kind(k)
		fn, err := d.str()
		if err != nil {
			return nil, err
		}
		o.Func = op.FuncID(fn)
		if o.Params, err = d.bytes(); err != nil {
			return nil, err
		}
		if len(o.Params) == 0 {
			o.Params = nil
		}
		if o.ReadSet, err = d.ids(); err != nil {
			return nil, err
		}
		if o.WriteSet, err = d.ids(); err != nil {
			return nil, err
		}
		if o.Deletes, err = d.ids(); err != nil {
			return nil, err
		}
		nv, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nv > 0 {
			o.Values = make(map[op.ObjectID][]byte, nv)
			for i := uint64(0); i < nv; i++ {
				x, err := d.str()
				if err != nil {
					return nil, err
				}
				v, err := d.bytes()
				if err != nil {
					return nil, err
				}
				o.Values[op.ObjectID(x)] = v
			}
		}
		r.Op = o
	case RecInstall:
		ir := &InstallRecord{}
		if ir.Flushed, err = d.rsis(); err != nil {
			return nil, err
		}
		if ir.Unflushed, err = d.rsis(); err != nil {
			return nil, err
		}
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.buf))+1 {
			return nil, errCorrupt
		}
		for i := uint64(0); i < n; i++ {
			l, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			ir.Ops = append(ir.Ops, op.SI(l))
		}
		r.Install = ir
	case RecFlush:
		x, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		r.Flush = &FlushRecord{Object: op.ObjectID(x), VSI: op.SI(v)}
	case RecCheckpoint:
		cr := &CheckpointRecord{}
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.buf))+1 {
			return nil, errCorrupt
		}
		for i := uint64(0); i < n; i++ {
			x, err := d.str()
			if err != nil {
				return nil, err
			}
			rsi, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			cr.Dirty = append(cr.Dirty, DirtyEntry{ID: op.ObjectID(x), RSI: op.SI(rsi)})
		}
		r.Checkpoint = cr
	case RecAbsorbed:
		x, err := d.str()
		if err != nil {
			return nil, err
		}
		elided, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		by, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		r.Absorbed = &AbsorbedRecord{Object: op.ObjectID(x), Elided: int64(elided), By: op.SI(by)}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", t)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after record", len(d.buf))
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// Frame wraps an encoded payload with length + CRC framing.
func Frame(payload []byte) []byte {
	out := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
	copy(out[frameOverhead:], payload)
	return out
}

// Unframe extracts the next payload from data.  It returns the payload, the
// number of bytes consumed, and an error.  A truncated or corrupt frame
// returns errTornTail, which scanners treat as end-of-log.
func Unframe(data []byte) ([]byte, int, error) {
	if len(data) < frameOverhead {
		return nil, 0, errTornTail
	}
	l := binary.LittleEndian.Uint32(data[0:4])
	want := binary.LittleEndian.Uint32(data[4:8])
	if uint32(len(data)-frameOverhead) < l {
		return nil, 0, errTornTail
	}
	payload := data[frameOverhead : frameOverhead+int(l)]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, 0, errTornTail
	}
	return payload, frameOverhead + int(l), nil
}

var errTornTail = fmt.Errorf("wal: torn or corrupt frame (end of log)")
