package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"logicallog/internal/op"
)

// Log is the write-ahead log.  Appended records first land in a volatile
// tail buffer; Force (or ForceThrough) makes them durable on the Device.
// A crash loses the volatile tail.  LSNs are assigned densely starting at 1
// and double as state identifiers (SIs) throughout the system.
//
// Log is safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	dev       Device
	nextLSN   op.SI
	stableLSN op.SI
	firstLSN  op.SI // first LSN still on the device (post truncation)
	tail      []pending

	stats Stats
}

type pending struct {
	lsn   op.SI
	frame []byte
}

// Stats aggregates the logging-cost accounting the experiments report.
type Stats struct {
	// Records counts appended records by type.
	Records map[RecordType]int64
	// PayloadBytes counts payload bytes by record type (framing excluded).
	PayloadBytes map[RecordType]int64
	// OpPayloadBytes counts operation payload bytes by operation kind —
	// this is the logical-vs-physical logging cost (Figure 1 / E1).
	OpPayloadBytes map[op.Kind]int64
	// ValueBytes counts bytes of logged data values (the part logical
	// operations avoid).
	ValueBytes int64
	// BytesAppended is the total framed bytes appended.
	BytesAppended int64
	// Forces counts Force calls that actually wrote to the device.
	Forces int64
}

func newStats() Stats {
	return Stats{
		Records:        make(map[RecordType]int64),
		PayloadBytes:   make(map[RecordType]int64),
		OpPayloadBytes: make(map[op.Kind]int64),
	}
}

func (s Stats) clone() Stats {
	c := newStats()
	for k, v := range s.Records {
		c.Records[k] = v
	}
	for k, v := range s.PayloadBytes {
		c.PayloadBytes[k] = v
	}
	for k, v := range s.OpPayloadBytes {
		c.OpPayloadBytes[k] = v
	}
	c.ValueBytes = s.ValueBytes
	c.BytesAppended = s.BytesAppended
	c.Forces = s.Forces
	return c
}

// TotalOpPayloadBytes sums operation payload bytes across kinds.
func (s Stats) TotalOpPayloadBytes() int64 {
	var t int64
	for _, v := range s.OpPayloadBytes {
		t += v
	}
	return t
}

// New creates a Log over dev.  If dev already holds records (restart after
// crash), the log resumes LSN assignment after the highest durable record.
func New(dev Device) (*Log, error) {
	l := &Log{dev: dev, nextLSN: 1, firstLSN: 1, stats: newStats()}
	// Recover LSN horizon from existing contents.
	data, err := dev.ReadAll()
	if err != nil {
		return nil, err
	}
	first := true
	for len(data) > 0 {
		payload, n, err := Unframe(data)
		if err != nil {
			break // torn tail: ignore, as recovery would
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			break
		}
		if first {
			l.firstLSN = rec.LSN
			first = false
		}
		l.stableLSN = rec.LSN
		l.nextLSN = rec.LSN + 1
		data = data[n:]
	}
	return l, nil
}

// Append assigns the next LSN to rec, encodes it into the volatile tail, and
// returns the LSN.  For operation records the operation's LSN field is set,
// binding the operation's lSI.  Append does NOT force; the WAL protocol's
// forcing happens before installation (see ForceThrough).
func (l *Log) Append(rec *Record) (op.SI, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.LSN = l.nextLSN
	if rec.Op != nil {
		rec.Op.LSN = rec.LSN
	}
	payload, err := EncodeRecord(rec)
	if err != nil {
		rec.LSN = 0
		if rec.Op != nil {
			rec.Op.LSN = 0
		}
		return 0, err
	}
	l.nextLSN++
	frame := Frame(payload)
	l.tail = append(l.tail, pending{lsn: rec.LSN, frame: frame})

	l.stats.Records[rec.Type]++
	l.stats.PayloadBytes[rec.Type] += int64(len(payload))
	l.stats.BytesAppended += int64(len(frame))
	if rec.Type == RecOperation {
		l.stats.OpPayloadBytes[rec.Op.Kind] += int64(len(payload))
		for _, v := range rec.Op.Values {
			l.stats.ValueBytes += int64(len(v))
		}
	}
	return rec.LSN, nil
}

// AppendOp is shorthand for Append(NewOpRecord(o)).
func (l *Log) AppendOp(o *op.Operation) (op.SI, error) { return l.Append(NewOpRecord(o)) }

// Force makes every appended record durable.
func (l *Log) Force() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forceLocked(l.nextLSN - 1)
}

// ForceThrough makes records up to and including lsn durable (WAL protocol:
// called before installing an operation's effects).
func (l *Log) ForceThrough(lsn op.SI) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forceLocked(lsn)
}

func (l *Log) forceLocked(lsn op.SI) error {
	if lsn <= l.stableLSN || len(l.tail) == 0 {
		return nil
	}
	var buf []byte
	n := 0
	for _, p := range l.tail {
		if p.lsn > lsn {
			break
		}
		buf = append(buf, p.frame...)
		n++
	}
	if n == 0 {
		return nil
	}
	if err := l.dev.Append(buf); err != nil {
		return fmt.Errorf("wal: force: %w", err)
	}
	l.stableLSN = l.tail[n-1].lsn
	l.tail = l.tail[n:]
	l.stats.Forces++
	return nil
}

// StableLSN returns the highest durable LSN.
func (l *Log) StableLSN() op.SI {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stableLSN
}

// NextLSN returns the LSN the next Append will assign.
func (l *Log) NextLSN() op.SI {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// FirstLSN returns the earliest LSN still on the device.
func (l *Log) FirstLSN() op.SI {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstLSN
}

// Crash drops the volatile tail, simulating a crash; it returns the number
// of records lost.  The device (stable log) is untouched.
func (l *Log) Crash() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.tail)
	l.tail = nil
	// LSN assignment continues monotonically after recovery; recovery
	// itself may log fresh records.
	return n
}

// Truncate discards all durable records with LSN < before.  Only installed
// operations may be truncated away; the caller (checkpointing) guarantees
// that.  Truncation rewrites the device.
func (l *Log) Truncate(before op.SI) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, err := l.dev.ReadAll()
	if err != nil {
		return err
	}
	var keep []byte
	newFirst := op.SI(0)
	for len(data) > 0 {
		payload, n, err := Unframe(data)
		if err != nil {
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			break
		}
		if rec.LSN >= before {
			if newFirst == 0 {
				newFirst = rec.LSN
			}
			keep = append(keep, data[:n]...)
		}
		data = data[n:]
	}
	if err := l.dev.Rewrite(keep); err != nil {
		return err
	}
	if newFirst == 0 {
		newFirst = before
	}
	l.firstLSN = newFirst
	return nil
}

// Scanner iterates durable records in LSN order.
type Scanner struct {
	data []byte
	from op.SI
}

// Scan returns a Scanner positioned at the first durable record with
// LSN >= from.  The scanner reads a snapshot; records appended afterwards
// are not visible.
func (l *Log) Scan(from op.SI) (*Scanner, error) {
	data, err := l.dev.ReadAll()
	if err != nil {
		return nil, err
	}
	return &Scanner{data: data, from: from}, nil
}

// Next returns the next record, or io.EOF at end of log (including at a
// torn tail, which terminates the log exactly as after a crash).
func (s *Scanner) Next() (*Record, error) {
	for len(s.data) > 0 {
		payload, n, err := Unframe(s.data)
		if err != nil {
			return nil, io.EOF
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return nil, io.EOF
		}
		s.data = s.data[n:]
		if rec.LSN >= s.from {
			return rec, nil
		}
	}
	return nil, io.EOF
}

// All drains the scanner into a slice.
func (s *Scanner) All() ([]*Record, error) {
	var out []*Record
	for {
		rec, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// LastCheckpoint scans the durable log and returns the most recent
// checkpoint record, or nil if none exists.
func (l *Log) LastCheckpoint() (*Record, error) {
	sc, err := l.Scan(0)
	if err != nil {
		return nil, err
	}
	var last *Record
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return last, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.Type == RecCheckpoint {
			last = rec
		}
	}
}

// Stats returns a snapshot of the logging statistics.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats.clone()
}

// ResetStats zeroes the statistics (benchmarks use this between phases).
func (l *Log) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = newStats()
}
