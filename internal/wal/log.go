package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
)

// Log is the write-ahead log.  Appended records first land in volatile
// per-lane stream buffers (the commit fast lane; see stream.go); Force (or
// ForceThrough) merges the streams into global LSN order and makes the
// records durable on the Device.  A crash loses everything volatile.  LSNs
// are assigned densely starting at 1 and double as state identifiers (SIs)
// throughout the system.
//
// Log is safe for concurrent use.  Appenders contend only on their stream's
// mutex plus one atomic LSN claim, not on the log mutex.  Concurrent forcers
// group-commit: while one caller (the leader) is writing the merged batch to
// the device, later callers whose records are covered by that in-flight
// write wait on it instead of issuing their own device write
// (leader/follower coalescing).  The device write itself happens outside the
// log mutex, so appenders keep running while a force is in flight.
type Log struct {
	mu        sync.Mutex
	forceDone *sync.Cond // broadcast when an in-flight force completes
	forcing   bool       // a leader is writing to the device
	// pendingForce accumulates the highest LSN requested by forcers that
	// arrived while a leader's write was in flight; the next leader
	// absorbs all of them in one device write.
	pendingForce op.SI
	dev          Device

	// nextLSN is the next LSN to assign.  Claims happen while a stream
	// mutex is held, which is what makes the merged prefix provably dense
	// (see stream.go).
	nextLSN atomic.Uint64

	stableLSN op.SI
	firstLSN  op.SI // first LSN still on the device (post truncation)

	// lanes is the active stream configuration; Append reads it without
	// locks, SetStreams swaps it under l.mu.
	lanes atomic.Pointer[streamSet]

	// shipped buffers records appended via AppendShipped.  Shipped records
	// bypass the streams (and with them the absorption index): a standby's
	// log must stay a byte-exact prefix copy of its primary's.
	shipped []streamRec

	// absorbIdx is the cross-stream absorption index, sharded by object so
	// concurrent appenders contend only when they touch objects hashing to
	// the same shard (see stream.go).
	absorbIdx [absorbShardCount]absorbShard

	// Merged staging: records collected out of the streams in LSN order,
	// framed, not yet acknowledged by the device.  Kept across a failed
	// device write so a retrying leader re-sends the same bytes; dropped by
	// Crash (mergedGen tells an in-flight leader its batch was crashed away).
	mergedBuf   []byte
	mergedCount int
	mergedLast  op.SI
	mergedGen   uint64
	mergeRuns   [][]streamRec

	// mergeProbe, when set, is consulted by the group-commit leader each
	// time it is about to write a freshly merged non-empty batch — the
	// stream-merge fault boundary (see SetMergeProbe).
	mergeProbe func() error

	// Transient-fault retry policy for device appends (see SetRetryPolicy).
	retryMax  int
	retryBase time.Duration
	retryCap  time.Duration

	stats Stats
	obs   logObs

	// flight is the optional decision flight recorder (see SetFlight).
	// Held as an atomic pointer because absorption-index updates read it
	// under stream/shard mutexes without l.mu.
	flight atomic.Pointer[flight.Recorder]

	// Retention hooks, under their own mutex so hook queries never nest
	// inside l.mu (see RegisterRetention).
	retainMu  sync.Mutex
	retainSeq int
	retain    map[int]retentionHook
}

// retentionHook is one registered truncation horizon (see RegisterRetention).
type retentionHook struct {
	name string
	fn   func() op.SI
}

// logObs holds the log's optional hot-path metrics (see SetObs).  All
// handles are nil when observability is off; every update below is nil-safe
// and clock reads are guarded, so the disabled overhead is a pointer test.
type logObs struct {
	// appendNs is the Append latency (encode + stream buffering), in ns.
	appendNs *obs.Histogram
	// forceDeviceNs is the per-force device write latency, in ns.
	forceDeviceNs *obs.Histogram
	// forceBatchRecords is the group-commit batch size distribution: log
	// records made durable per device write.
	forceBatchRecords *obs.Histogram
	// forceBatchBytes is the framed bytes per device write.
	forceBatchBytes *obs.Histogram
	// retryBackoffNs is the transient-retry backoff slept per attempt.
	retryBackoffNs *obs.Histogram
	// mergeNs is the stream-merge latency per force, in ns.
	mergeNs *obs.Histogram
	// mergeRecords is the records merged per stream merge.
	mergeRecords *obs.Histogram
	// absorbHits counts records elided by log absorption.
	absorbHits *obs.Counter
	// absorbBytesElided counts durable bytes saved by log absorption.
	absorbBytesElided *obs.Counter
}

// SetObs wires the log's hot-path metrics into r; nil disables them.
func (l *Log) SetObs(r *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r == nil {
		l.obs = logObs{}
	} else {
		l.obs = logObs{
			appendNs:          r.Histogram("wal.append.ns"),
			forceDeviceNs:     r.Histogram("wal.force.device_ns"),
			forceBatchRecords: r.Histogram("wal.force.batch_records"),
			forceBatchBytes:   r.Histogram("wal.force.batch_bytes"),
			retryBackoffNs:    r.Histogram("wal.retry.backoff_ns"),
			mergeNs:           r.Histogram("wal.merge.ns"),
			mergeRecords:      r.Histogram("wal.merge.records"),
			absorbHits:        r.Counter("wal.absorb.hits"),
			absorbBytesElided: r.Counter("wal.absorb.bytes_elided"),
		}
	}
	ss := l.lockAllStreams()
	for _, s := range ss {
		s.obs = l.obs
	}
	l.unlockAllStreams(ss)
}

// SetFlight wires the decision flight recorder; nil disables it.  The
// log records absorption decisions (record/cancel/commit) and stream
// merges; all emission is nil-safe and observational only.
func (l *Log) SetFlight(r *flight.Recorder) {
	l.flight.Store(r)
}

// Stats aggregates the logging-cost accounting the experiments report.
type Stats struct {
	// Records counts appended records by type.
	Records map[RecordType]int64
	// PayloadBytes counts payload bytes by record type (framing excluded).
	PayloadBytes map[RecordType]int64
	// OpPayloadBytes counts operation payload bytes by operation kind —
	// this is the logical-vs-physical logging cost (Figure 1 / E1).
	OpPayloadBytes map[op.Kind]int64
	// ValueBytes counts bytes of logged data values (the part logical
	// operations avoid).
	ValueBytes int64
	// BytesAppended is the total framed bytes appended (pre-absorption:
	// absorbed records count at their original size).
	BytesAppended int64
	// Forces counts Force calls that actually wrote to the device.
	Forces int64
	// ForcesCoalesced counts Force/ForceThrough calls satisfied by another
	// caller's in-flight device write (group commit followers).
	ForcesCoalesced int64
	// TransientRetries counts device appends retried after a transient
	// (retryable) error.
	TransientRetries int64
	// TruncationsClamped counts Truncate calls whose cut point was raised
	// less far than requested because a registered retention horizon
	// (backup image, lagging standby) still needed earlier records.
	TruncationsClamped int64
	// Merges counts stream merges that moved at least one record.
	Merges int64
	// Absorbed counts records elided by log absorption (replaced by a
	// RecAbsorbed tombstone in the durable log).
	Absorbed int64
	// BytesElided is the durable bytes saved by absorption: original frame
	// size minus tombstone frame size, summed over absorbed records.
	BytesElided int64
}

// transient matches errors that mark themselves retryable, such as the
// fault layer's injected EIOs.  Declared locally so wal does not import the
// fault package (which imports wal).
type transient interface {
	Transient() bool
}

// IsTransient reports whether err is a retryable I/O error.
func IsTransient(err error) bool {
	var t transient
	return errors.As(err, &t) && t.Transient()
}

// Backoff is a capped exponential backoff sequence: base, 2·base, 4·base,
// ..., clamped to max.  Unlike recomputing the delay from the attempt number
// each iteration (the old TransientBackoff call pattern), the state is
// advanced incrementally, so a retry loop does O(1) work per attempt.
type Backoff struct {
	next time.Duration
	max  time.Duration
}

// NewBackoff returns a backoff sequence starting at base and doubling per
// Next call, clamped to max (max <= 0 means uncapped).
func NewBackoff(base, max time.Duration) Backoff {
	return Backoff{next: base, max: max}
}

// Next returns the next delay in the sequence and advances it.
func (b *Backoff) Next() time.Duration {
	d := b.next
	if d <= 0 {
		return 0
	}
	if b.max > 0 && d >= b.max {
		b.next = b.max
		return b.max
	}
	b.next = d * 2
	return d
}

// TransientBackoff returns the capped exponential delay before the given
// 1-based retry attempt.  Retry loops should prefer a Backoff value hoisted
// out of the loop; this closed form is kept for one-shot queries.
func TransientBackoff(attempt int, base, max time.Duration) time.Duration {
	b := NewBackoff(base, max)
	d := time.Duration(0)
	for i := 0; i < attempt; i++ {
		d = b.Next()
	}
	return d
}

func newStats() Stats {
	return Stats{
		Records:        make(map[RecordType]int64),
		PayloadBytes:   make(map[RecordType]int64),
		OpPayloadBytes: make(map[op.Kind]int64),
	}
}

// clone returns a deep copy: the scalar fields by value and every map
// rebuilt, so a snapshot handed to a concurrent reader shares nothing with
// the maps appenders keep mutating under the log mutex.
func (s Stats) clone() Stats {
	c := s // scalars
	c.Records = make(map[RecordType]int64, len(s.Records))
	for k, v := range s.Records {
		c.Records[k] = v
	}
	c.PayloadBytes = make(map[RecordType]int64, len(s.PayloadBytes))
	for k, v := range s.PayloadBytes {
		c.PayloadBytes[k] = v
	}
	c.OpPayloadBytes = make(map[op.Kind]int64, len(s.OpPayloadBytes))
	for k, v := range s.OpPayloadBytes {
		c.OpPayloadBytes[k] = v
	}
	return c
}

// add folds another snapshot's counts into s (used to aggregate the
// per-stream append-side stats into one view).
func (s *Stats) add(o Stats) {
	for k, v := range o.Records {
		s.Records[k] += v
	}
	for k, v := range o.PayloadBytes {
		s.PayloadBytes[k] += v
	}
	for k, v := range o.OpPayloadBytes {
		s.OpPayloadBytes[k] += v
	}
	s.ValueBytes += o.ValueBytes
	s.BytesAppended += o.BytesAppended
	s.Forces += o.Forces
	s.ForcesCoalesced += o.ForcesCoalesced
	s.TransientRetries += o.TransientRetries
	s.TruncationsClamped += o.TruncationsClamped
	s.Merges += o.Merges
	s.Absorbed += o.Absorbed
	s.BytesElided += o.BytesElided
}

// TotalOpPayloadBytes sums operation payload bytes across kinds.
func (s Stats) TotalOpPayloadBytes() int64 {
	var t int64
	for _, v := range s.OpPayloadBytes {
		t += v
	}
	return t
}

// New creates a Log over dev.  If dev already holds records (restart after
// crash), the log resumes LSN assignment after the highest durable record.
// The log starts with a single stream and absorption off; see SetStreams.
func New(dev Device) (*Log, error) {
	l := &Log{dev: dev, firstLSN: 1, stats: newStats()}
	l.nextLSN.Store(1)
	l.forceDone = sync.NewCond(&l.mu)
	l.lanes.Store(&streamSet{streams: []*logStream{{stats: newStats()}}})
	for i := range l.absorbIdx {
		l.absorbIdx[i].reset()
	}
	// Recover LSN horizon from existing contents.
	data, err := dev.ReadAll()
	if err != nil {
		return nil, err
	}
	first := true
	for len(data) > 0 {
		payload, n, err := Unframe(data)
		if err != nil {
			break // torn tail: ignore, as recovery would
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			break
		}
		if first {
			l.firstLSN = rec.LSN
			first = false
		} else if rec.LSN != l.stableLSN+1 {
			break // LSN gap: a lost write; the log ends at the gap
		}
		l.stableLSN = rec.LSN
		l.nextLSN.Store(uint64(rec.LSN) + 1)
		data = data[n:]
	}
	return l, nil
}

// SetStreams configures the commit fast lane: n per-lane append streams
// (clamped to [1, 64]) and whether log absorption is enabled.  Any records
// already buffered are re-homed, so reconfiguration is safe at any quiesced
// point; the durable byte stream is identical at every stream count.
func (l *Log) SetStreams(n int, absorb bool) {
	if n < 1 {
		n = 1
	}
	if n > maxLogStreams {
		n = maxLogStreams
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	old := l.lockAllStreams()
	var carry []streamRec
	for _, s := range old {
		carry = append(carry, s.recs...)
		s.recs = nil
	}
	sort.Slice(carry, func(i, j int) bool { return carry[i].lsn < carry[j].lsn })
	streams := make([]*logStream, n)
	for i := range streams {
		streams[i] = &logStream{stats: newStats(), obs: l.obs}
	}
	streams[0].recs = carry
	// Fold the retired streams' append accounting into the log-level stats
	// so Stats snapshots lose nothing across a reconfiguration.
	for _, s := range old {
		l.stats.add(s.stats)
	}
	l.lanes.Store(&streamSet{streams: streams, absorb: absorb})
	l.unlockAllStreams(old)
}

// SetMergeProbe installs a hook the group-commit leader calls each time it
// has merged a non-empty batch and is about to write it to the device — the
// stream-merge fault boundary.  A non-nil error aborts the force before the
// device write; the merged records stay volatile.  nil removes the hook.
func (l *Log) SetMergeProbe(fn func() error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mergeProbe = fn
}

// SetRetryPolicy configures transient-fault retry for device appends in
// Force/ForceThrough: an append failing with a retryable error (see
// IsTransient) is retried up to maxRetries times with capped exponential
// backoff.  maxRetries <= 0 disables retry (the default).
func (l *Log) SetRetryPolicy(maxRetries int, base, cap time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retryMax = maxRetries
	l.retryBase = base
	l.retryCap = cap
}

// Append assigns the next LSN to rec, encodes it into a volatile stream, and
// returns the LSN.  For operation records the operation's LSN field is set,
// binding the operation's lSI.  Append does NOT force; the WAL protocol's
// forcing happens before installation (see ForceThrough).
func (l *Log) Append(rec *Record) (op.SI, error) {
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	set := l.lanes.Load()
	var obj op.ObjectID
	if set.absorb {
		obj, _ = absorbTarget(rec)
	}
	s := set.pick()
	s.mu.Lock()
	var appendStart time.Time
	if s.obs.appendNs.Enabled() {
		appendStart = time.Now()
	}
	// The claim happens inside the stream critical section: that is the
	// density invariant the merge relies on (see stream.go).
	lsn := op.SI(l.nextLSN.Add(1) - 1)
	rec.LSN = lsn
	if rec.Op != nil {
		rec.Op.LSN = lsn
	}
	sr := s.append(rec, lsn, obj)
	if set.absorb {
		l.noteAbsorb(rec, sr)
	}
	if s.obs.appendNs.Enabled() {
		s.obs.appendNs.Since(appendStart)
	}
	s.mu.Unlock()
	return lsn, nil
}

// AppendOp is shorthand for Append(NewOpRecord(o)).
func (l *Log) AppendOp(o *op.Operation) (op.SI, error) { return l.Append(NewOpRecord(o)) }

// AppendShipped appends a record that already owns its LSN — a record
// received from a primary's log stream.  The standby's log must be a
// gap-free prefix copy of the primary's, so the record has to land exactly
// at the next LSN; the one exception is a completely fresh log (bootstrap
// from a backup image), which adopts the stream's first LSN as its origin.
// Shipped records bypass the streams and the absorption index entirely:
// they are buffered in arrival (= LSN) order and are never elided, keeping
// the standby log byte-identical to the primary's.  Like Append,
// AppendShipped does not force.
func (l *Log) AppendShipped(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.LSN == 0 {
		return fmt.Errorf("wal: shipped record has no LSN")
	}
	if l.stableLSN == 0 {
		// Fresh log: adopt the stream origin (backup StartLSN).  nextLSN
		// still at 1 means nothing was ever appended or merged, so no
		// volatile record can exist either.
		if l.nextLSN.CompareAndSwap(1, uint64(rec.LSN)) {
			l.firstLSN = rec.LSN
		}
	}
	if !l.nextLSN.CompareAndSwap(uint64(rec.LSN), uint64(rec.LSN)+1) {
		return fmt.Errorf("wal: shipped record LSN %d, want %d", rec.LSN, l.nextLSN.Load())
	}
	payload, err := EncodeRecord(rec)
	if err != nil {
		// Give the claimed LSN back; the caller's record never landed.  CAS,
		// not Store: nothing stops a caller from mixing local Appends with
		// shipped records, and a concurrent Append may have claimed the next
		// LSN already — rewinding over it would reissue a claimed LSN.  If
		// the CAS loses, the claimed LSN is simply left as a gap at the
		// durable tail, which Scan and recovery already treat as end-of-log.
		l.nextLSN.CompareAndSwap(uint64(rec.LSN)+1, uint64(rec.LSN))
		return err
	}
	frame := Frame(payload)
	l.shipped = append(l.shipped, streamRec{lsn: rec.LSN, frame: frame})
	l.noteShippedLocked(rec, payload, frame)
	return nil
}

// noteShippedLocked updates the append statistics for one shipped record.
func (l *Log) noteShippedLocked(rec *Record, payload, frame []byte) {
	l.stats.Records[rec.Type]++
	l.stats.PayloadBytes[rec.Type] += int64(len(payload))
	l.stats.BytesAppended += int64(len(frame))
	if rec.Type == RecOperation {
		l.stats.OpPayloadBytes[rec.Op.Kind] += int64(len(payload))
		for _, v := range rec.Op.Values {
			l.stats.ValueBytes += int64(len(v))
		}
	}
}

// Force makes every appended record durable.
func (l *Log) Force() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forceLocked(op.SI(l.nextLSN.Load()) - 1)
}

// ForceThrough makes records up to and including lsn durable (WAL protocol:
// called before installing an operation's effects).
func (l *Log) ForceThrough(lsn op.SI) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forceLocked(lsn)
}

// forceLocked implements group commit.  The caller holds l.mu; the device
// write happens with the mutex released.
//
// A caller whose lsn is already durable returns immediately.  Otherwise, if
// a leader's device write is in flight, the caller records its target in
// pendingForce and waits as a follower: when the leader finishes, a
// follower whose lsn the write covered returns without touching the device
// (counted in ForcesCoalesced).  A caller that finds no force in flight
// becomes the leader: it merges every stream's records covering its own
// target and every target accumulated in pendingForce into the staging
// buffer (absorption tombstones are substituted here; see mergeThrough) and
// writes the staged batch in one device append — coalescing concurrent
// committers without forcing records nobody asked for (the unforced suffix
// stays crash-losable, which the simulator's crash model depends on).
func (l *Log) forceLocked(lsn op.SI) error {
	joined := false
	for {
		if lsn <= l.stableLSN {
			if joined {
				l.stats.ForcesCoalesced++
			}
			return nil
		}
		if !l.forcing {
			break
		}
		joined = true
		if lsn > l.pendingForce {
			l.pendingForce = lsn
		}
		l.forceDone.Wait()
	}
	// Leader: claim every pending target in one write.
	target := lsn
	if l.pendingForce > target {
		target = l.pendingForce
	}
	l.pendingForce = 0
	l.mergeThrough(target)
	if l.mergedCount == 0 {
		return nil
	}
	if l.mergeProbe != nil {
		if err := l.mergeProbe(); err != nil {
			return fmt.Errorf("wal: force: %w", err)
		}
	}
	buf := l.mergedBuf
	n := l.mergedCount
	last := l.mergedLast
	gen := l.mergedGen
	l.forcing = true
	retryMax, retryBase, retryCap := l.retryMax, l.retryBase, l.retryCap
	hooks := l.obs
	l.mu.Unlock()
	var deviceStart time.Time
	if hooks.forceDeviceNs.Enabled() {
		deviceStart = time.Now()
	}
	err := l.dev.Append(buf)
	var retries int64
	backoff := NewBackoff(retryBase, retryCap)
	for attempt := 1; err != nil && attempt <= retryMax && IsTransient(err); attempt++ {
		d := backoff.Next()
		hooks.retryBackoffNs.ObserveDuration(d)
		time.Sleep(d)
		retries++
		err = l.dev.Append(buf)
	}
	if hooks.forceDeviceNs.Enabled() {
		hooks.forceDeviceNs.Since(deviceStart)
		hooks.forceBatchRecords.Observe(int64(n))
		hooks.forceBatchBytes.Observe(int64(len(buf)))
	}
	l.mu.Lock()
	l.forcing = false
	l.stats.TransientRetries += retries
	if err == nil {
		if last > l.stableLSN {
			l.stableLSN = last
		}
		// Drop exactly the staged batch written.  Crash may have reset the
		// staging buffer meanwhile (mergedGen moved); the device write still
		// happened, so stableLSN stands either way.
		if l.mergedGen == gen {
			l.mergedBuf = nil
			l.mergedCount = 0
		}
		l.stats.Forces++
	}
	l.forceDone.Broadcast()
	if err != nil {
		return fmt.Errorf("wal: force: %w", err)
	}
	return nil
}

// StableLSN returns the highest durable LSN.
func (l *Log) StableLSN() op.SI {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stableLSN
}

// NextLSN returns the LSN the next Append will assign.
func (l *Log) NextLSN() op.SI {
	return op.SI(l.nextLSN.Load())
}

// FirstLSN returns the earliest LSN still on the device.
func (l *Log) FirstLSN() op.SI {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstLSN
}

// volatileCountLocked counts buffered records not yet acknowledged by the
// device.  Caller holds l.mu and every stream mutex.
func (l *Log) volatileCountLocked(ss []*logStream) int {
	n := l.mergedCount + len(l.shipped)
	for _, s := range ss {
		n += s.volatileCount()
	}
	return n
}

// Crash drops every volatile record (stream buffers, shipped tail, and the
// merged staging buffer), simulating a crash; it returns the number of
// records lost.  The device (stable log) is untouched.
func (l *Log) Crash() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	ss := l.lockAllStreams()
	n := l.mergedCount + len(l.shipped)
	for _, s := range ss {
		n += s.drop()
	}
	l.shipped = nil
	l.mergedBuf = nil
	l.mergedCount = 0
	l.mergedLast = 0
	l.mergedGen++
	for i := range l.absorbIdx {
		sh := &l.absorbIdx[i]
		sh.mu.Lock()
		sh.reset()
		sh.mu.Unlock()
	}
	l.unlockAllStreams(ss)
	// LSN assignment continues monotonically after recovery; recovery
	// itself may log fresh records.
	return n
}

// TrimTornTail rewrites the device down to its trustworthy prefix and
// returns the bytes discarded.  A record is trustworthy when it frames and
// decodes cleanly, extends the previous record's LSN by one, and — if it
// lies beyond the acked horizon (stableLSN) with nothing acked before it —
// starts exactly where the log would have appended.  Everything from the
// first violation on is the debris of a torn, bit-flipped, or reordered
// final append.
func (l *Log) TrimTornTail() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.forcing {
		l.forceDone.Wait()
	}
	return l.trimTornTailLocked()
}

func (l *Log) trimTornTailLocked() (int, error) {
	data, err := l.dev.ReadAll()
	if err != nil {
		return 0, err
	}
	good := 0
	last := op.SI(0)
	rest := data
	for len(rest) > 0 {
		payload, n, err := Unframe(rest)
		if err != nil {
			break
		}
		rec, err := decodeRecordAliased(payload)
		if err != nil {
			break
		}
		if last != 0 && rec.LSN != last+1 {
			break // interior gap: a dropped frame in a reordered batch
		}
		if last == 0 && rec.LSN > l.stableLSN {
			// The device's very first record was never acked, so nothing
			// vouches for it unless it sits exactly where the next append
			// would have landed: after the acked horizon, or at the log's
			// first LSN when nothing was ever acked.  A later LSN means
			// the append's leading frames were lost.
			want := l.stableLSN + 1
			if l.stableLSN == 0 {
				want = l.firstLSN
			}
			if rec.LSN != want {
				break
			}
		}
		last = rec.LSN
		good += n
		rest = rest[n:]
	}
	if good == len(data) {
		return 0, nil
	}
	if err := l.dev.Rewrite(data[:good]); err != nil {
		return 0, err
	}
	if last < l.stableLSN {
		// Only possible outside the crash model (acked data lost); keep
		// the horizon consistent with the device regardless.
		l.stableLSN = last
	}
	return len(data) - good, nil
}

// Restart re-synchronizes the log with its device at recovery time, as a
// process restart's New would: it waits out any in-flight force, trims the
// untrustworthy tail a mid-append crash left behind (see TrimTornTail), and
// — when the volatile buffers are empty, i.e. the caller crashed first —
// rewinds the LSN horizon to the durable log so the LSNs of lost records
// are reused and the durable log stays gap-free.  With volatile records
// still buffered (recovery without a crash) the horizon is left alone: the
// buffers still own their LSNs.  An empty device also leaves the horizon
// alone, because checkpoint truncation legitimately erases records whose
// LSNs must not be reassigned.
func (l *Log) Restart() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.forcing {
		l.forceDone.Wait()
	}
	if _, err := l.trimTornTailLocked(); err != nil {
		return fmt.Errorf("wal: restart: %w", err)
	}
	ss := l.lockAllStreams()
	defer l.unlockAllStreams(ss)
	if l.volatileCountLocked(ss) != 0 {
		return nil
	}
	data, err := l.dev.ReadAll()
	if err != nil {
		return fmt.Errorf("wal: restart: %w", err)
	}
	first := op.SI(0)
	last := op.SI(0)
	for len(data) > 0 {
		payload, n, err := Unframe(data)
		if err != nil {
			return fmt.Errorf("wal: restart: device still torn after trim")
		}
		rec, err := decodeRecordAliased(payload)
		if err != nil {
			return fmt.Errorf("wal: restart: device still torn after trim")
		}
		if first == 0 {
			first = rec.LSN
		}
		last = rec.LSN
		data = data[n:]
	}
	if last == 0 {
		return nil // empty device: keep the horizon (see doc comment)
	}
	l.firstLSN = first
	if last > l.stableLSN {
		// A torn append can land every frame and lose only the ack; the
		// records are durable, so the horizon advances over them.
		l.stableLSN = last
	}
	l.nextLSN.Store(uint64(l.stableLSN) + 1)
	return nil
}

// RegisterRetention registers a truncation horizon: Truncate will never
// discard records with LSN >= the hook's returned value, no matter what cut
// point the caller asks for.  A hook returning NilSI (0) abstains for that
// truncation.  Hooks are consulted outside the log mutex and must not call
// back into the Log.  The returned release function unregisters the hook;
// name appears in no output today but keeps hooks identifiable under a
// debugger.
func (l *Log) RegisterRetention(name string, fn func() op.SI) (release func()) {
	l.retainMu.Lock()
	defer l.retainMu.Unlock()
	if l.retain == nil {
		l.retain = make(map[int]retentionHook)
	}
	id := l.retainSeq
	l.retainSeq++
	l.retain[id] = retentionHook{name: name, fn: fn}
	return func() {
		l.retainMu.Lock()
		defer l.retainMu.Unlock()
		delete(l.retain, id)
	}
}

// retentionFloor queries every registered hook and returns the lowest
// non-zero horizon, or 0 when no hook constrains truncation.
func (l *Log) retentionFloor() op.SI {
	l.retainMu.Lock()
	hooks := make([]retentionHook, 0, len(l.retain))
	//lint:ignore replaydeterminism commutative min-fold over hooks
	for _, h := range l.retain {
		hooks = append(hooks, h)
	}
	l.retainMu.Unlock()
	floor := op.SI(0)
	for _, h := range hooks {
		if lsn := h.fn(); lsn != 0 && (floor == 0 || lsn < floor) {
			floor = lsn
		}
	}
	return floor
}

// Truncate discards all durable records with LSN < before.  Only installed
// operations may be truncated away; the checkpointing caller guarantees
// that for the local engine, and registered retention hooks (backup images,
// lagging standbys) clamp the cut point further so no dependent replica is
// stranded.  Truncation rewrites the device.
func (l *Log) Truncate(before op.SI) error {
	clamped := false
	if floor := l.retentionFloor(); floor != 0 && floor < before {
		before = floor
		clamped = true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if clamped {
		l.stats.TruncationsClamped++
	}
	// Truncation rewrites the device from a full read; an in-flight force
	// appending concurrently would be lost by the rewrite.  Wait it out.
	for l.forcing {
		l.forceDone.Wait()
	}
	data, err := l.dev.ReadAll()
	if err != nil {
		return err
	}
	var keep []byte
	newFirst := op.SI(0)
	last := op.SI(0)
	for len(data) > 0 {
		payload, n, err := Unframe(data)
		if err != nil {
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			break
		}
		if last != 0 && rec.LSN != last+1 {
			break // LSN gap: the durable log ends here
		}
		last = rec.LSN
		if rec.LSN >= before {
			if newFirst == 0 {
				newFirst = rec.LSN
			}
			keep = append(keep, data[:n]...)
		}
		data = data[n:]
	}
	if err := l.dev.Rewrite(keep); err != nil {
		return err
	}
	if newFirst == 0 {
		newFirst = before
	}
	l.firstLSN = newFirst
	return nil
}

// Scanner iterates durable records in LSN order.
//
// Returned records' byte fields (operation params and values) alias the
// scanner's private snapshot of the device, which is immutable; callers must
// treat them as read-only (recovery clones operations before applying them).
// This keeps the redo scan free of per-record payload copies.
type Scanner struct {
	data []byte
	from op.SI
	last op.SI // LSN of the last record decoded, for gap detection
}

// Scan returns a Scanner positioned at the first durable record with
// LSN >= from.  The scanner reads a snapshot; records appended afterwards
// are not visible.
func (l *Log) Scan(from op.SI) (*Scanner, error) {
	data, err := l.dev.ReadAll()
	if err != nil {
		return nil, err
	}
	return &Scanner{data: data, from: from}, nil
}

// Next returns the next record, or io.EOF at end of log (including at a
// torn tail, which terminates the log exactly as after a crash, and at an
// LSN gap, which marks a lost write inside a reordered batch).
func (s *Scanner) Next() (*Record, error) {
	for len(s.data) > 0 {
		payload, n, err := Unframe(s.data)
		if err != nil {
			return nil, io.EOF
		}
		rec, err := decodeRecordAliased(payload)
		if err != nil {
			return nil, io.EOF
		}
		if s.last != 0 && rec.LSN != s.last+1 {
			return nil, io.EOF
		}
		s.last = rec.LSN
		s.data = s.data[n:]
		if rec.LSN >= s.from {
			return rec, nil
		}
	}
	return nil, io.EOF
}

// All drains the scanner into a slice.
func (s *Scanner) All() ([]*Record, error) {
	var out []*Record
	for {
		rec, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// LastCheckpoint scans the durable log and returns the most recent
// checkpoint record, or nil if none exists.
func (l *Log) LastCheckpoint() (*Record, error) {
	sc, err := l.Scan(0)
	if err != nil {
		return nil, err
	}
	var last *Record
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return last, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.Type == RecCheckpoint {
			last = rec
		}
	}
}

// Stats returns a snapshot of the logging statistics, aggregated across the
// log-level counters and every stream's append-side accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.stats.clone()
	ss := l.lockAllStreams()
	for _, s := range ss {
		out.add(s.stats)
	}
	l.unlockAllStreams(ss)
	return out
}

// ResetStats zeroes the statistics (benchmarks use this between phases).
func (l *Log) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = newStats()
	ss := l.lockAllStreams()
	for _, s := range ss {
		s.stats = newStats()
	}
	l.unlockAllStreams(ss)
}
