package wal

import (
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"logicallog/internal/op"
)

func mustAppend(t *testing.T, l *Log, rec *Record) op.SI {
	t.Helper()
	lsn, err := l.Append(rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return lsn
}

func TestRecordValidate(t *testing.T) {
	good := NewOpRecord(op.NewPhysicalWrite("X", []byte("v")))
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []*Record{
		{Type: RecOperation},                                                       // no payload
		{Type: RecInstall, Flush: &FlushRecord{}},                                  // wrong payload
		{Type: RecInvalid, Flush: &FlushRecord{}},                                  // invalid type
		{Type: RecOperation, Op: &op.Operation{}},                                  // invalid op
		{Type: RecFlush, Flush: &FlushRecord{}, Op: op.NewPhysicalWrite("X", nil)}, // two payloads
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d validated", i)
		}
	}
	if RecOperation.String() != "op" || RecCheckpoint.String() != "checkpoint" ||
		RecInstall.String() != "install" || RecFlush.String() != "flush" || RecordType(77).String() == "" {
		t.Error("RecordType.String wrong")
	}
}

func TestCodecRoundTripAllTypes(t *testing.T) {
	recs := []*Record{
		NewOpRecord(op.NewLogical(op.FuncXor, op.EncodeParams([]byte("Y"), []byte("X")),
			[]op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"})),
		NewOpRecord(op.NewPhysicalWrite("X", []byte{0, 1, 2, 255})),
		NewOpRecord(op.NewIdentityWrite("obj/with/long-name", make([]byte, 1000))),
		NewOpRecord(op.NewDelete("A", "B")),
		NewInstallRecord(
			[]ObjectRSI{{ID: "Y", RSI: 9}},
			[]ObjectRSI{{ID: "X", RSI: 12}},
			[]op.SI{3, 1, 2},
		),
		NewFlushRecord("P", 42),
		NewCheckpointRecord([]DirtyEntry{{ID: "b", RSI: 2}, {ID: "a", RSI: 7}}),
	}
	for i, rec := range recs {
		rec.LSN = op.SI(i + 1)
		if rec.Op != nil {
			rec.Op.LSN = rec.LSN
		}
		payload, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("rec %d decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(rec), normalize(got)) {
			t.Errorf("rec %d round trip:\n want %+v\n got  %+v", i, rec, got)
		}
	}
}

// normalize clears fields the codec legitimately canonicalizes.
func normalize(r *Record) *Record {
	c := *r
	if r.Op != nil {
		o := r.Op.Clone()
		if len(o.Params) == 0 {
			o.Params = nil
		}
		c.Op = o
	}
	return &c
}

func TestInstallRecordCanonicalOrder(t *testing.T) {
	rec := NewInstallRecord(
		[]ObjectRSI{{ID: "z", RSI: 1}, {ID: "a", RSI: 2}},
		nil,
		[]op.SI{5, 3},
	)
	if rec.Install.Flushed[0].ID != "a" || rec.Install.Ops[0] != 3 {
		t.Error("install record not canonicalized")
	}
}

func TestCheckpointRedoStart(t *testing.T) {
	c := &CheckpointRecord{Dirty: []DirtyEntry{{ID: "a", RSI: 9}, {ID: "b", RSI: 4}}}
	if got := c.RedoStart(100); got != 4 {
		t.Errorf("RedoStart = %d", got)
	}
	empty := &CheckpointRecord{}
	if got := empty.RedoStart(100); got != 100 {
		t.Errorf("empty RedoStart = %d", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rec := NewOpRecord(op.NewPhysicalWrite("X", []byte("hello")))
	rec.LSN = 1
	payload, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations must error, not panic.
	for cut := 1; cut < len(payload); cut++ {
		if _, err := DecodeRecord(payload[:cut]); err == nil {
			// Some prefixes can decode to a shorter valid record only if
			// trailing-byte detection fails; that must not happen.
			t.Errorf("truncated payload (len %d) decoded", cut)
		}
	}
	if _, err := DecodeRecord(append(payload, 0x01)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeRecord([]byte{99, 1}); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestFrameUnframe(t *testing.T) {
	payload := []byte("some payload")
	frame := Frame(payload)
	got, n, err := Unframe(frame)
	if err != nil || n != len(frame) || string(got) != string(payload) {
		t.Fatalf("Unframe = %q, %d, %v", got, n, err)
	}
	// CRC mismatch.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := Unframe(bad); err == nil {
		t.Error("corrupt frame accepted")
	}
	// Short frame.
	if _, _, err := Unframe(frame[:5]); err == nil {
		t.Error("short frame accepted")
	}
	if _, _, err := Unframe(frame[:len(frame)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestAppendForceScan(t *testing.T) {
	l, err := New(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	o1 := op.NewPhysicalWrite("X", []byte("1"))
	l1 := mustAppend(t, l, NewOpRecord(o1))
	if l1 != 1 || o1.LSN != 1 {
		t.Errorf("first LSN = %d, op LSN = %d", l1, o1.LSN)
	}
	l2 := mustAppend(t, l, NewFlushRecord("X", l1))
	if l2 != 2 {
		t.Errorf("second LSN = %d", l2)
	}
	if l.StableLSN() != 0 {
		t.Error("records durable before force")
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if l.StableLSN() != 2 {
		t.Errorf("StableLSN = %d", l.StableLSN())
	}
	sc, err := l.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sc.All()
	if err != nil || len(recs) != 2 {
		t.Fatalf("scan: %d records, %v", len(recs), err)
	}
	if recs[0].Type != RecOperation || recs[1].Type != RecFlush {
		t.Error("scan order/type wrong")
	}
	// Scan from the middle.
	sc, _ = l.Scan(2)
	recs, _ = sc.All()
	if len(recs) != 1 || recs[0].LSN != 2 {
		t.Errorf("Scan(2) = %v", recs)
	}
}

func TestForceThroughPartial(t *testing.T) {
	l, _ := New(NewMemDevice())
	for i := 0; i < 5; i++ {
		mustAppend(t, l, NewFlushRecord("X", op.SI(i+1)))
	}
	if err := l.ForceThrough(3); err != nil {
		t.Fatal(err)
	}
	if l.StableLSN() != 3 {
		t.Errorf("StableLSN = %d, want 3", l.StableLSN())
	}
	// Idempotent / no-op force.
	if err := l.ForceThrough(2); err != nil {
		t.Fatal(err)
	}
	if l.StableLSN() != 3 {
		t.Error("ForceThrough went backwards")
	}
	lost := l.Crash()
	if lost != 2 {
		t.Errorf("Crash lost %d records, want 2", lost)
	}
	sc, _ := l.Scan(0)
	recs, _ := sc.All()
	if len(recs) != 3 {
		t.Errorf("after crash: %d durable records, want 3", len(recs))
	}
}

func TestCrashLosesTailAndRestartResumes(t *testing.T) {
	dev := NewMemDevice()
	l, _ := New(dev)
	mustAppend(t, l, NewFlushRecord("A", 1))
	mustAppend(t, l, NewFlushRecord("B", 2))
	if err := l.ForceThrough(1); err != nil {
		t.Fatal(err)
	}
	l.Crash()

	// Restart over the same device.
	l2, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if l2.StableLSN() != 1 {
		t.Errorf("restart StableLSN = %d", l2.StableLSN())
	}
	// New appends continue after the durable horizon.
	lsn := mustAppend(t, l2, NewFlushRecord("C", 3))
	if lsn != 2 {
		t.Errorf("restart next LSN = %d, want 2", lsn)
	}
}

// Torn-tail behavior is covered exhaustively in fault_test.go (package
// wal_test), which injects tears through the internal/fault layer instead
// of a device-specific corruption hook.

func TestTruncate(t *testing.T) {
	l, _ := New(NewMemDevice())
	for i := 0; i < 6; i++ {
		mustAppend(t, l, NewFlushRecord("X", op.SI(i)))
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if l.FirstLSN() != 4 {
		t.Errorf("FirstLSN = %d", l.FirstLSN())
	}
	sc, _ := l.Scan(0)
	recs, _ := sc.All()
	if len(recs) != 3 || recs[0].LSN != 4 {
		t.Errorf("after truncate: %v", recs)
	}
	// Appends still work after truncation.
	lsn := mustAppend(t, l, NewFlushRecord("Y", 9))
	if lsn != 7 {
		t.Errorf("post-truncate LSN = %d", lsn)
	}
}

func TestLastCheckpoint(t *testing.T) {
	l, _ := New(NewMemDevice())
	if cp, err := l.LastCheckpoint(); err != nil || cp != nil {
		t.Errorf("empty log checkpoint = %v, %v", cp, err)
	}
	mustAppend(t, l, NewCheckpointRecord([]DirtyEntry{{ID: "a", RSI: 1}}))
	mustAppend(t, l, NewFlushRecord("a", 1))
	second := mustAppend(t, l, NewCheckpointRecord([]DirtyEntry{{ID: "b", RSI: 2}}))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	cp, err := l.LastCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.LSN != second {
		t.Errorf("LastCheckpoint = %+v, want LSN %d", cp, second)
	}
	if cp.Checkpoint.Dirty[0].ID != "b" {
		t.Error("wrong checkpoint returned")
	}
}

func TestStatsAccounting(t *testing.T) {
	l, _ := New(NewMemDevice())
	big := make([]byte, 4096)
	mustAppend(t, l, NewOpRecord(op.NewPhysicalWrite("X", big)))
	mustAppend(t, l, NewOpRecord(op.NewLogical(op.FuncCopy, []byte("X"), []op.ObjectID{"Y"}, []op.ObjectID{"X"})))
	st := l.Stats()
	if st.Records[RecOperation] != 2 {
		t.Errorf("Records = %v", st.Records)
	}
	if st.ValueBytes != 4096 {
		t.Errorf("ValueBytes = %d", st.ValueBytes)
	}
	phys := st.OpPayloadBytes[op.KindPhysicalWrite]
	logi := st.OpPayloadBytes[op.KindLogical]
	if phys < 4096 {
		t.Errorf("physical payload = %d, must include the value", phys)
	}
	if logi >= 128 {
		t.Errorf("logical payload = %d, must be id-sized", logi)
	}
	if st.TotalOpPayloadBytes() != phys+logi {
		t.Error("TotalOpPayloadBytes mismatch")
	}
	if st.BytesAppended <= st.TotalOpPayloadBytes() {
		t.Error("BytesAppended must include framing")
	}
	l.ResetStats()
	if l.Stats().BytesAppended != 0 {
		t.Error("ResetStats failed")
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, NewFlushRecord("A", 1))
	mustAppend(t, l, NewFlushRecord("B", 2))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify contents survive.
	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	l2, err := New(dev2)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := l2.Scan(0)
	recs, _ := sc.All()
	if len(recs) != 1 || recs[0].LSN != 2 {
		t.Errorf("file device reopen: %v", recs)
	}
	sz, err := dev2.Size()
	if err != nil || sz == 0 {
		t.Errorf("Size = %d, %v", sz, err)
	}
}

func TestScannerEOFSemantics(t *testing.T) {
	l, _ := New(NewMemDevice())
	sc, _ := l.Scan(0)
	if _, err := sc.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty scan err = %v", err)
	}
}

func TestCodecQuickOpRecords(t *testing.T) {
	// Property: arbitrary physical writes round-trip through the codec.
	f := func(name string, value []byte, lsn uint32) bool {
		if name == "" {
			name = "x"
		}
		rec := NewOpRecord(op.NewPhysicalWrite(op.ObjectID(name), value))
		rec.LSN = op.SI(lsn) + 1
		rec.Op.LSN = rec.LSN
		payload, err := EncodeRecord(rec)
		if err != nil {
			return false
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			return false
		}
		return got.LSN == rec.LSN &&
			got.Op.Kind == op.KindPhysicalWrite &&
			got.Op.WriteSet[0] == op.ObjectID(name) &&
			op.Equal(got.Op.Values[op.ObjectID(name)], value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomCrashRestartConsistency(t *testing.T) {
	// Property: after any force/crash interleaving, the durable log is a
	// prefix of what was appended, ends at the last forced LSN, and
	// restarting resumes LSN assignment correctly.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		dev := NewMemDevice()
		l, _ := New(dev)
		appended := 0
		forced := op.SI(0)
		for i := 0; i < 50; i++ {
			switch rng.Intn(5) {
			case 0:
				if err := l.Force(); err != nil {
					t.Fatal(err)
				}
				forced = op.SI(appended)
			case 1:
				if appended > 0 {
					upTo := op.SI(1 + rng.Intn(appended))
					if err := l.ForceThrough(upTo); err != nil {
						t.Fatal(err)
					}
					if upTo > forced {
						forced = upTo
					}
				}
			default:
				mustAppend(t, l, NewFlushRecord("X", op.SI(i)))
				appended++
			}
		}
		l.Crash()
		l2, err := New(dev)
		if err != nil {
			t.Fatal(err)
		}
		if l2.StableLSN() != forced {
			t.Fatalf("trial %d: StableLSN = %d, want %d", trial, l2.StableLSN(), forced)
		}
		sc, _ := l2.Scan(0)
		recs, _ := sc.All()
		if len(recs) != int(forced) {
			t.Fatalf("trial %d: %d durable records, want %d", trial, len(recs), forced)
		}
		for i, rec := range recs {
			if rec.LSN != op.SI(i+1) {
				t.Fatalf("trial %d: record %d has LSN %d", trial, i, rec.LSN)
			}
		}
	}
}
