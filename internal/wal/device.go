package wal

import (
	"fmt"
	"os"
	"sync"
)

// Device is the durable byte store beneath a Log.  Append is atomic and
// durable in the simulator's crash model; the Log's volatile tail models the
// unforced buffer that a crash loses.
type Device interface {
	// Append durably appends p.
	Append(p []byte) error
	// ReadAll returns the device's full contents.
	ReadAll() ([]byte, error)
	// Size returns the current length in bytes.
	Size() (int64, error)
	// Rewrite atomically replaces the device contents (used by log
	// truncation).
	Rewrite(p []byte) error
	// Close releases resources.
	Close() error
}

// MemDevice is an in-memory Device, the default for simulations and tests.
// Fault injection (torn appends, bit flips, reordered batches) lives in
// internal/fault, whose Plan.WrapDevice decorates any Device.
type MemDevice struct {
	mu   sync.Mutex
	data []byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// Append implements Device.
func (m *MemDevice) Append(p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = append(m.data, p...)
	return nil
}

// ReadAll implements Device.
func (m *MemDevice) ReadAll() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.data...), nil
}

// Size implements Device.
func (m *MemDevice) Size() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.data)), nil
}

// Rewrite implements Device.
func (m *MemDevice) Rewrite(p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = append([]byte(nil), p...)
	return nil
}

// Close implements Device.
func (m *MemDevice) Close() error { return nil }

// FileDevice is a file-backed Device so logs can be inspected offline with
// cmd/llinspect and survive real process restarts.
type FileDevice struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenFileDevice opens (creating if needed) a file-backed device.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &FileDevice{path: path, f: f}, nil
}

// Append implements Device.
func (d *FileDevice) Append(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.f.Write(p); err != nil {
		return err
	}
	return d.f.Sync()
}

// ReadAll implements Device.
func (d *FileDevice) ReadAll() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return os.ReadFile(d.path)
}

// Size implements Device.
func (d *FileDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Rewrite implements Device.
func (d *FileDevice) Rewrite(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp := d.path + ".tmp"
	if err := os.WriteFile(tmp, p, 0o644); err != nil {
		return err
	}
	if err := d.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.path); err != nil {
		return err
	}
	f, err := os.OpenFile(d.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	d.f = f
	return nil
}

// Close implements Device.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}
