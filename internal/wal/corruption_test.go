package wal

import (
	"math/rand"
	"testing"

	"logicallog/internal/op"
)

// TestDecodeNeverPanics feeds random byte soup and random mutations of valid
// payloads through the decoder: corruption must surface as errors, never as
// panics or accepted garbage with trailing bytes.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decoder panicked: %v", r)
		}
	}()
	// Pure noise.
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		rec, err := DecodeRecord(buf)
		if err == nil {
			if verr := rec.Validate(); verr != nil {
				t.Fatalf("decoder accepted noise that fails validation: %v", verr)
			}
		}
	}
	// Mutated valid payloads.
	seeds := []*Record{
		NewOpRecord(op.NewLogical(op.FuncXor, op.EncodeParams([]byte("a"), []byte("b")),
			[]op.ObjectID{"a", "b"}, []op.ObjectID{"b"})),
		NewInstallRecord([]ObjectRSI{{ID: "x", RSI: 4}}, []ObjectRSI{{ID: "y", RSI: 9}}, []op.SI{1, 2}),
		NewCheckpointRecord([]DirtyEntry{{ID: "x", RSI: 2}}),
		NewFlushRecord("x", 3),
	}
	for _, seed := range seeds {
		seed.LSN = 1
		if seed.Op != nil {
			seed.Op.LSN = 1
		}
		payload, err := EncodeRecord(seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			mut := append([]byte(nil), payload...)
			for flips := rng.Intn(3) + 1; flips > 0; flips-- {
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			}
			rec, err := DecodeRecord(mut)
			if err == nil {
				// A surviving mutation must still be a structurally valid
				// record (CRC framing catches these in practice anyway).
				if verr := rec.Validate(); verr != nil {
					t.Fatalf("mutated payload decoded into invalid record: %v", verr)
				}
			}
		}
	}
}

// TestScanThroughCorruptMiddle checks that a frame corrupted in the middle
// of the log terminates the scan at the corruption point (torn-tail
// semantics), never yielding later records out of order.
func TestScanThroughCorruptMiddle(t *testing.T) {
	dev := NewMemDevice()
	l, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(NewFlushRecord("x", op.SI(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	data, _ := dev.ReadAll()
	// Flip a byte roughly in the middle (inside record 3's frame).
	data[len(data)/2] ^= 0xFF
	dev.Rewrite(data)

	sc, err := l.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 5 {
		t.Fatalf("scan returned %d records across corruption", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != op.SI(i+1) {
			t.Errorf("record %d has LSN %d", i, rec.LSN)
		}
	}
}
