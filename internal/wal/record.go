// Package wal implements the write-ahead log of the recovery system: typed
// log records, a checksummed binary codec, pluggable storage devices, the
// force/crash/truncate lifecycle, and sequential scanning for recovery.
//
// Besides operation records, the log carries the bookkeeping records
// Section 5 of the paper relies on:
//
//   - installation records, written when a write-graph node is installed,
//     naming the flushed objects (vars(n)) and the unexposed objects
//     (Notx(n)) together with their new recovery SIs;
//   - flush records, the physiological special case ("logging object
//     flushes has its origin in recovery lore");
//   - checkpoint records carrying a snapshot of the dirty object table,
//     from which the analysis pass derives the redo scan start point.
package wal

import (
	"fmt"
	"sort"

	"logicallog/internal/op"
)

// RecordType discriminates log records.
type RecordType uint8

const (
	// RecInvalid is never written.
	RecInvalid RecordType = iota
	// RecOperation carries a logged operation (logical, physiological, or
	// physical, per its Kind).
	RecOperation
	// RecInstall records that a write-graph node was installed: its vars
	// were flushed and its Notx objects are installed-without-flushing.
	RecInstall
	// RecFlush records a completed single-object flush (the physiological
	// fast path; lazily logged after the flush).
	RecFlush
	// RecCheckpoint carries a dirty-object-table snapshot.
	RecCheckpoint
	// RecAbsorbed is the tombstone of a log-absorbed operation: a blind
	// full-object write superseded, while still volatile, by a later blind
	// write to the same object in the same force batch.  The marker keeps
	// the durable LSN sequence dense (gap detection, ship contiguity, and
	// torn-tail trimming all rely on density) while eliding the superseded
	// value bytes.  Recovery and the standby skip it like any non-operation
	// record; replaying the surviving later write yields the same state.
	RecAbsorbed
)

func (t RecordType) String() string {
	switch t {
	case RecOperation:
		return "op"
	case RecInstall:
		return "install"
	case RecFlush:
		return "flush"
	case RecCheckpoint:
		return "checkpoint"
	case RecAbsorbed:
		return "absorbed"
	}
	return fmt.Sprintf("RecordType(%d)", uint8(t))
}

// ObjectRSI pairs an object with its new recovery state identifier.
type ObjectRSI struct {
	ID  op.ObjectID
	RSI op.SI
}

// InstallRecord describes the installation of one write-graph node
// (Section 5: "we capture these opportunities to advance object rSIs by
// logging the installation of each node n of rW").
type InstallRecord struct {
	// Flushed lists vars(n): objects whose values were atomically written
	// to the stable database, with their advanced rSIs.
	Flushed []ObjectRSI
	// Unflushed lists Notx(n): objects installed without flushing (their
	// pre-crash stable values are stale but unexposed), with their
	// advanced rSIs.  The rSI of an unexposed object is the lSI of the
	// blind write (or delete) that follows it.
	Unflushed []ObjectRSI
	// Ops lists the LSNs of the installed operations, for diagnostics and
	// log-truncation decisions.
	Ops []op.SI
}

// FlushRecord describes a completed single-object flush.
type FlushRecord struct {
	Object op.ObjectID
	// VSI is the state identifier of the flushed value.
	VSI op.SI
}

// DirtyEntry is one row of a checkpointed dirty object table.
type DirtyEntry struct {
	ID op.ObjectID
	// RSI is the lSI of the earliest log record needed to recover the
	// object (ARIES's recovery LSN, generalized).
	RSI op.SI
}

// CheckpointRecord snapshots the dirty object table, as ARIES does ("ARIES
// writes to the log the identities of dirty pages and their rSIs in its
// checkpoint record").
type CheckpointRecord struct {
	Dirty []DirtyEntry
}

// AbsorbedRecord is the payload of a RecAbsorbed tombstone.
type AbsorbedRecord struct {
	// Object is the object the absorbed write targeted.
	Object op.ObjectID
	// Elided is the payload length, in bytes, of the absorbed record.
	Elided int64
	// By is the LSN of the later write that superseded the absorbed one —
	// the provenance a durable tombstone carries so llinspect can name its
	// absorber (a committed absorption; canceled ones never reach the log).
	By op.SI
}

// RedoStart returns the earliest rSI among dirty entries, or fallback if the
// table is empty — the redo scan start point.
func (c *CheckpointRecord) RedoStart(fallback op.SI) op.SI {
	if len(c.Dirty) == 0 {
		return fallback
	}
	min := c.Dirty[0].RSI
	for _, d := range c.Dirty[1:] {
		if d.RSI < min {
			min = d.RSI
		}
	}
	return min
}

// Record is one log record.  Exactly one of the payload pointers is non-nil,
// matching Type.
type Record struct {
	LSN        op.SI
	Type       RecordType
	Op         *op.Operation
	Install    *InstallRecord
	Flush      *FlushRecord
	Checkpoint *CheckpointRecord
	Absorbed   *AbsorbedRecord
}

// Validate checks that the record's payload matches its type.
func (r *Record) Validate() error {
	set := 0
	if r.Op != nil {
		set++
	}
	if r.Install != nil {
		set++
	}
	if r.Flush != nil {
		set++
	}
	if r.Checkpoint != nil {
		set++
	}
	if r.Absorbed != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("wal: record must carry exactly one payload, has %d", set)
	}
	switch r.Type {
	case RecOperation:
		if r.Op == nil {
			return fmt.Errorf("wal: operation record without operation")
		}
		return r.Op.Validate()
	case RecInstall:
		if r.Install == nil {
			return fmt.Errorf("wal: install record without payload")
		}
	case RecFlush:
		if r.Flush == nil {
			return fmt.Errorf("wal: flush record without payload")
		}
	case RecCheckpoint:
		if r.Checkpoint == nil {
			return fmt.Errorf("wal: checkpoint record without payload")
		}
	case RecAbsorbed:
		if r.Absorbed == nil {
			return fmt.Errorf("wal: absorbed record without payload")
		}
		if r.Absorbed.Object == "" {
			return fmt.Errorf("wal: absorbed record without object")
		}
	default:
		return fmt.Errorf("wal: invalid record type %v", r.Type)
	}
	return nil
}

// NewOpRecord wraps an operation.
func NewOpRecord(o *op.Operation) *Record { return &Record{Type: RecOperation, Op: o} }

// NewInstallRecord builds an installation record with canonical ordering.
func NewInstallRecord(flushed, unflushed []ObjectRSI, ops []op.SI) *Record {
	sortRSIs(flushed)
	sortRSIs(unflushed)
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return &Record{Type: RecInstall, Install: &InstallRecord{
		Flushed:   flushed,
		Unflushed: unflushed,
		Ops:       ops,
	}}
}

// NewFlushRecord builds a single-object flush record.
func NewFlushRecord(x op.ObjectID, vsi op.SI) *Record {
	return &Record{Type: RecFlush, Flush: &FlushRecord{Object: x, VSI: vsi}}
}

// NewAbsorbedRecord builds the tombstone substituted for an absorbed
// write; by is the superseding write's LSN.
func NewAbsorbedRecord(x op.ObjectID, elided int64, by op.SI) *Record {
	return &Record{Type: RecAbsorbed, Absorbed: &AbsorbedRecord{Object: x, Elided: elided, By: by}}
}

// NewCheckpointRecord builds a checkpoint record with canonical ordering.
func NewCheckpointRecord(dirty []DirtyEntry) *Record {
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].ID < dirty[j].ID })
	return &Record{Type: RecCheckpoint, Checkpoint: &CheckpointRecord{Dirty: dirty}}
}

func sortRSIs(s []ObjectRSI) {
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
}
