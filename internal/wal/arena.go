package wal

// The write-side analogue of the aliasing scan decoder: instead of giving
// every appended record a fresh heap allocation for its frame, each stream
// encodes records in place into reusable fixed-capacity chunks.  A chunk is
// recycled once every frame it holds has been consumed by a stream merge, so
// steady-state append is allocation-flat.

const (
	// arenaChunkSize is the capacity of one encode chunk.
	arenaChunkSize = 128 << 10
	// arenaMinSpare rotates to a fresh chunk when less spare capacity than
	// this remains, so frames rarely straddle a chunk boundary.
	arenaMinSpare = 8 << 10
	// arenaFreeMax bounds the recycled-chunk freelist per stream.
	arenaFreeMax = 4
)

// chunk is one fixed-capacity encode buffer.  len(buf) is the used prefix;
// live counts the frames inside it that a merge has not yet consumed.
type chunk struct {
	buf  []byte
	live int
}

// arena hands out chunk space for frame encoding and recycles chunks whose
// frames have all been merged.  It is owned by one logStream and guarded by
// that stream's mutex.
type arena struct {
	cur  *chunk
	free []*chunk
}

// appendFrame encodes rec as a framed record, preferring in-place encoding
// into the current chunk.  It returns the frame and the chunk backing it;
// the chunk is nil when the frame outgrew the chunk and escaped to the heap.
// The caller must have validated rec.
func (a *arena) appendFrame(rec *Record) ([]byte, *chunk) {
	c := a.cur
	if c == nil || cap(c.buf)-len(c.buf) < arenaMinSpare {
		c = a.grab()
	}
	used := len(c.buf)
	out := AppendFrame(c.buf, rec)
	frame := out[used:len(out):len(out)]
	if len(out) > cap(c.buf) {
		// append outgrew the chunk and reallocated; the frame lives on the
		// heap and the chunk's used prefix is unchanged.
		return frame, nil
	}
	c.buf = out
	c.live++
	return frame, c
}

// grab returns a fresh current chunk, recycling from the freelist when one
// is available.
func (a *arena) grab() *chunk {
	var c *chunk
	if n := len(a.free); n > 0 {
		c = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		c = &chunk{buf: make([]byte, 0, arenaChunkSize)}
	}
	a.cur = c
	return c
}

// release records that one frame of c has been consumed by a merge.  When a
// chunk's last frame is consumed its space is reclaimed: the current chunk
// rewinds in place, a retired chunk returns to the freelist.
func (a *arena) release(c *chunk) {
	if c == nil {
		return
	}
	c.live--
	if c.live > 0 {
		return
	}
	c.buf = c.buf[:0]
	if c != a.cur && len(a.free) < arenaFreeMax {
		a.free = append(a.free, c)
	}
}
