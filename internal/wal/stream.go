package wal

import (
	"sync"
	"sync/atomic"
	"time"

	"logicallog/internal/op"
)

// Per-core log streams (the commit fast lane).  Append no longer serializes
// every caller on the log mutex: each append claims the next LSN and encodes
// its frame inside one stream's private critical section, so concurrent
// committers contend only when they land on the same stream.  Streams hold
// records out of global order; the group-commit leader merges them back into
// dense LSN order at force time, which keeps the durable byte stream
// identical to single-stream operation — recovery, the ship Sender cursor,
// retention horizons, and Scan never see a difference.
//
// The density argument: an LSN is claimed from the shared counter while its
// stream's mutex is held, and the record is buffered before that mutex is
// released.  The merging leader acquires every stream mutex, so no claim can
// be in flight while it looks: every LSN below the counter is present in
// some stream (or already merged), and the merged prefix is gap-free.

// maxLogStreams clamps the configured stream count.
const maxLogStreams = 64

// logStream is one private append lane.
type logStream struct {
	mu    sync.Mutex
	recs  []streamRec // volatile records, LSN-ascending (claims happen under mu)
	arena arena
	stats Stats // append-side accounting, folded into Log.Stats snapshots
	obs   logObs
}

// streamRec is one volatile record buffered in a stream.
type streamRec struct {
	lsn   op.SI
	frame []byte
	chunk *chunk // arena chunk backing frame; nil when heap-backed
	// obj is set when the record is an absorption candidate (a blind
	// single-object physical write); empty otherwise.
	obj op.ObjectID
}

// streamSet is the immutable lane configuration Append reads without locks;
// SetStreams swaps in a new one atomically.
type streamSet struct {
	streams []*logStream
	absorb  bool
	// hintPool hands out per-P lane hints (see pick).  hintCtr assigns a
	// fresh hint the next lane, round-robin.
	hintPool sync.Pool
	hintCtr  atomic.Uint64
}

// pick selects the lane for one append.  With a single stream there is no
// choice; otherwise the lane comes from a sync.Pool-cached hint.  Pool
// storage is per-P, so a committer that stays on one core keeps hitting the
// same lane — the "per-core" in per-core log streams — without any shared
// counter bouncing between cache lines on every append.  Hints are handed
// out round-robin, so cores spread evenly across lanes; a pool-evicted hint
// just means a fresh round-robin assignment.
func (ss *streamSet) pick() *logStream {
	if len(ss.streams) == 1 {
		return ss.streams[0]
	}
	h, _ := ss.hintPool.Get().(*uint64)
	if h == nil {
		n := ss.hintCtr.Add(1) - 1
		h = &n
	}
	s := ss.streams[*h%uint64(len(ss.streams))]
	ss.hintPool.Put(h)
	return s
}

// append encodes rec (already validated, LSN assigned) into the stream.
func (s *logStream) append(rec *Record, lsn op.SI, obj op.ObjectID) streamRec {
	frame, ch := s.arena.appendFrame(rec)
	sr := streamRec{lsn: lsn, frame: frame, chunk: ch, obj: obj}
	s.recs = append(s.recs, sr)
	s.note(rec, len(frame))
	return sr
}

// note updates the stream's append statistics for one encoded record.
func (s *logStream) note(rec *Record, frameLen int) {
	payloadLen := int64(frameLen - frameOverhead)
	s.stats.Records[rec.Type]++
	s.stats.PayloadBytes[rec.Type] += payloadLen
	s.stats.BytesAppended += int64(frameLen)
	if rec.Type == RecOperation {
		s.stats.OpPayloadBytes[rec.Op.Kind] += payloadLen
		for _, v := range rec.Op.Values {
			s.stats.ValueBytes += int64(len(v))
		}
	}
}

// volatileCount returns the number of buffered records.  Caller holds s.mu.
func (s *logStream) volatileCount() int { return len(s.recs) }

// drop discards every buffered record (crash).  Caller holds s.mu.
func (s *logStream) drop() int {
	n := len(s.recs)
	s.recs = nil
	s.arena = arena{}
	return n
}

// Log absorption.  Within the volatile window, a later blind full-object
// write to the same object supersedes an earlier one: replaying both or only
// the later one yields the same state, provided no logged record in between
// reads the object and the earlier write is not yet durable.  The absorption
// index tracks, per object, the latest volatile candidate write; when a new
// candidate arrives the previous one is marked absorbed.  The elision itself
// happens at merge time: the absorbed record's frame is replaced by a tiny
// RecAbsorbed tombstone at the same LSN — but only when its absorber is
// merged in the same batch.  If the force horizon covers the absorbed record
// and not its absorber, the absorption is cancelled and the record merges in
// full, because a crash after the force must still recover its value.
//
// Ordering.  LSN claims are atomic, but each record's index update runs
// under its own stream's mutex, so updates for records on different streams
// can reach a shard in either order.  Every index decision is therefore
// guarded by explicit LSN comparisons rather than arrival order:
//
//   - The candidate for an object is always its highest-LSN volatile blind
//     write; a write that arrives at the shard after a higher-LSN write is
//     itself the superseded record, never the absorber.
//   - Record a may be elided by record b only when a < b and no observer —
//     a record reading, deleting, or non-blindly writing the object — has
//     an LSN inside (a, b).  Each shard tracks maxObs, the per-object
//     maximum observer LSN; registration and absorption refuse whenever
//     maxObs could put an observer inside the elision interval (maxObs is
//     only a maximum, so the checks are conservative).
//   - An observer whose index update arrives after an absorption was
//     already recorded cancels any pair whose interval contains it.
//
// The cancellation in the last point cannot lose to the merge: an observer
// updates the index while still holding its stream mutex, the merging
// leader takes every stream mutex, and no pair with by > observer can exist
// before the observer's LSN was claimed (LSNs are monotone) — so a
// tombstone is never written for an interval containing a claimed-but-
// unregistered observer.

// candInfo is the absorption index entry for an object's latest volatile
// candidate write.
type candInfo struct {
	lsn op.SI
	// payload is the candidate's encoded payload length, recorded in the
	// tombstone if the candidate is absorbed.
	payload int64
}

// absorbedPair marks one absorbed record awaiting tombstone substitution.
type absorbedPair struct {
	obj op.ObjectID
	// payload is the absorbed record's payload length (tombstone Elided).
	payload int64
	// by is the LSN of the absorbing write; the substitution is valid only
	// for force horizons that cover it.
	by op.SI
}

// absorbTarget reports whether rec is an absorption candidate: a blind
// physical write of exactly one object, carrying its value, with no reads
// and no deletes.  Identity writes (W_IP), creates, deletes, physiological
// and logical kinds, and every non-operation record are excluded.
func absorbTarget(rec *Record) (op.ObjectID, bool) {
	if rec.Type != RecOperation {
		return "", false
	}
	o := rec.Op
	if o.Kind != op.KindPhysicalWrite {
		return "", false
	}
	if len(o.WriteSet) != 1 || len(o.ReadSet) != 0 || len(o.Deletes) != 0 {
		return "", false
	}
	if _, ok := o.Values[o.WriteSet[0]]; !ok {
		return "", false
	}
	return o.WriteSet[0], true
}

// absorbShardCount shards the absorption index by object; a power of two so
// the hash reduces with a mask.
const absorbShardCount = 16

// absorbShard is one lock-striped slice of the absorption index.  Candidates
// and absorbers may live in different log streams, but every index operation
// is per-object, so striping by object keeps the semantics of a single
// global index while letting appenders on different objects proceed in
// parallel.
type absorbShard struct {
	mu       sync.Mutex
	cands    map[op.ObjectID]candInfo
	absorbed map[op.SI]absorbedPair
	// maxObs is, per object, the highest LSN of any volatile record that
	// observed the object (read it, deleted it, or wrote it non-blindly).
	// Candidate registration and absorption consult it so that no record
	// observed by a later operation is ever elided, even when index updates
	// arrive out of LSN order across streams.  Entries at or below the merge
	// horizon are pruned at merge time.
	maxObs map[op.ObjectID]op.SI
}

// reset empties the shard (init and crash).  Caller holds sh.mu (or is the
// constructor, before the log is shared).
func (sh *absorbShard) reset() {
	sh.cands = make(map[op.ObjectID]candInfo)
	sh.absorbed = make(map[op.SI]absorbedPair)
	sh.maxObs = make(map[op.ObjectID]op.SI)
}

// absorbShardFor returns the shard owning obj's index entries (FNV-1a).
func (l *Log) absorbShardFor(obj op.ObjectID) *absorbShard {
	h := uint32(2166136261)
	for i := 0; i < len(obj); i++ {
		h ^= uint32(obj[i])
		h *= 16777619
	}
	return &l.absorbIdx[h&(absorbShardCount-1)]
}

// observe records that the record at lsn observed obj (read it, deleted it,
// or wrote it non-blindly): it raises the object's observer horizon, drops
// any candidate the observer pins (one with a lower LSN — a higher-LSN
// candidate postdates the observer and stays absorbable), and cancels any
// already-recorded absorption whose elision interval contains the observer.
// That last case arises only from out-of-LSN-order index updates: the
// absorption was decided before the observer's update reached the shard.
func (l *Log) observe(obj op.ObjectID, lsn op.SI) {
	sh := l.absorbShardFor(obj)
	sh.mu.Lock()
	if sh.maxObs[obj] < lsn {
		sh.maxObs[obj] = lsn
	}
	if c, ok := sh.cands[obj]; ok && c.lsn < lsn {
		delete(sh.cands, obj)
	}
	for alsn, pair := range sh.absorbed {
		if pair.obj == obj && alsn < lsn && lsn < pair.by {
			delete(sh.absorbed, alsn)
			l.flight.Load().AbsorbCancel(obj, alsn, lsn)
		}
	}
	sh.mu.Unlock()
}

// noteCandidate registers a blind single-object write in the absorption
// index.  Updates from different streams can arrive out of LSN order, so
// every decision is LSN-guarded (see the ordering notes above): the
// highest-LSN write stays the candidate, only an older record is ever
// marked absorbed by a newer one, and nothing is registered or absorbed
// across a recorded observer.
func (l *Log) noteCandidate(sr streamRec) {
	sh := l.absorbShardFor(sr.obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obsLSN := sh.maxObs[sr.obj]
	payload := int64(len(sr.frame) - frameOverhead)
	prev, ok := sh.cands[sr.obj]
	switch {
	case !ok:
		// First volatile write; a candidate must postdate every recorded
		// observer, or a future absorber could elide it across a read.
		if obsLSN < sr.lsn {
			sh.cands[sr.obj] = candInfo{lsn: sr.lsn, payload: payload}
		}
	case prev.lsn < sr.lsn:
		// Normal order: sr supersedes prev.  maxObs < prev.lsn proves the
		// interval (prev.lsn, sr.lsn) is observer-free.
		if obsLSN < prev.lsn {
			sh.absorbed[prev.lsn] = absorbedPair{obj: sr.obj, payload: prev.payload, by: sr.lsn}
			l.flight.Load().AbsorbRecord(sr.obj, prev.lsn, sr.lsn)
		}
		if obsLSN < sr.lsn {
			sh.cands[sr.obj] = candInfo{lsn: sr.lsn, payload: payload}
		} else {
			delete(sh.cands, sr.obj)
		}
	default:
		// Inverted arrival: the registered candidate already has the higher
		// LSN, so sr is the superseded record — absorb it, keep prev.
		// Registering sr instead would tombstone the later write and replay
		// to the older value.
		if obsLSN < sr.lsn {
			sh.absorbed[sr.lsn] = absorbedPair{obj: sr.obj, payload: payload, by: prev.lsn}
			l.flight.Load().AbsorbRecord(sr.obj, sr.lsn, prev.lsn)
		}
	}
}

// noteAbsorb updates the absorption index for one appended record.  The
// caller holds the record's stream mutex.  Reads pin: any record reading (or
// deleting, or non-blindly writing) an object raises its observer horizon,
// so no record observed by a later operation is ever elided.  Every index
// update is per-object, so a multi-object record touches its shards one at a
// time — there is no invariant spanning two objects.
func (l *Log) noteAbsorb(rec *Record, sr streamRec) {
	if rec.Type != RecOperation {
		return
	}
	o := rec.Op
	for _, x := range o.ReadSet {
		l.observe(x, sr.lsn)
	}
	for _, x := range o.Deletes {
		l.observe(x, sr.lsn)
	}
	if sr.obj != "" {
		l.noteCandidate(sr)
		return
	}
	for _, x := range o.WriteSet {
		l.observe(x, sr.lsn)
	}
}

// lockAllStreams acquires every stream mutex in index order.  Combined with
// LSN claims happening under a stream mutex, holding all of them gives the
// merging leader a gap-free view of every claimed LSN.  Caller holds l.mu.
func (l *Log) lockAllStreams() []*logStream {
	ss := l.lanes.Load().streams
	for i := range ss {
		ss[i].mu.Lock()
	}
	return ss
}

// unlockAllStreams releases the mutexes lockAllStreams acquired.
func (l *Log) unlockAllStreams(ss []*logStream) {
	for i := range ss {
		ss[i].mu.Unlock()
	}
}

// mergeThrough moves every buffered record with LSN <= target out of the
// streams (and the shipped tail) into the merged staging buffer, in LSN
// order, substituting tombstones for absorbed records whose absorber is also
// covered.  Caller holds l.mu; the staging buffer survives a failed device
// write so a retrying leader re-sends the same bytes.
func (l *Log) mergeThrough(target op.SI) {
	var mergeStart time.Time
	if l.obs.mergeNs.Enabled() {
		mergeStart = time.Now()
	}
	ss := l.lockAllStreams()
	runs := l.mergeRuns[:0]
	counts := make([]int, len(ss))
	for i, s := range ss {
		n := 0
		for _, r := range s.recs {
			if r.lsn > target {
				break
			}
			n++
		}
		counts[i] = n
		if n > 0 {
			runs = append(runs, s.recs[:n])
		}
	}
	nShip := 0
	for _, r := range l.shipped {
		if r.lsn > target {
			break
		}
		nShip++
	}
	if nShip > 0 {
		runs = append(runs, l.shipped[:nShip])
	}
	l.mergeRuns = runs[:0]

	// K-way merge: every run is already LSN-ascending (claims happen under
	// the stream mutex; shipped records arrive in LSN order), so repeatedly
	// taking the smallest head yields global LSN order without a sort.
	merged := 0
	for len(runs) > 0 {
		min := 0
		for i := 1; i < len(runs); i++ {
			if runs[i][0].lsn < runs[min][0].lsn {
				min = i
			}
		}
		r := runs[min][0]
		if len(runs[min]) == 1 {
			runs[min] = runs[len(runs)-1]
			runs = runs[:len(runs)-1]
		} else {
			runs[min] = runs[min][1:]
		}
		l.mergeRecord(r, target)
		merged++
	}

	for i, s := range ss {
		for _, r := range s.recs[:counts[i]] {
			s.arena.release(r.chunk)
		}
		s.recs = s.recs[counts[i]:]
	}
	l.shipped = l.shipped[nShip:]
	l.pruneObservers(target)
	if merged > 0 {
		l.stats.Merges++
		if l.obs.mergeNs.Enabled() {
			l.obs.mergeNs.Since(mergeStart)
			l.obs.mergeRecords.Observe(int64(merged))
		}
		l.flight.Load().Merge(target, int64(merged))
	}
	l.unlockAllStreams(ss)
}

// pruneObservers drops per-object observer horizons at or below target:
// every record covered by this merge is durable (or staged), so no future
// elision interval can start below it and the entries can never matter
// again.  Caller holds l.mu and every stream mutex, so no index update runs
// concurrently.
func (l *Log) pruneObservers(target op.SI) {
	for i := range l.absorbIdx {
		sh := &l.absorbIdx[i]
		sh.mu.Lock()
		for obj, lsn := range sh.maxObs {
			if lsn <= target {
				delete(sh.maxObs, obj)
			}
		}
		sh.mu.Unlock()
	}
}

// mergeRecord appends one record — or, when its absorber is covered by the
// same batch, its RecAbsorbed tombstone — to the merged staging buffer.
// Caller holds l.mu and every stream mutex, so no noteAbsorb runs
// concurrently; only absorption candidates (r.obj set) can appear in the
// absorbed index, so every other record skips the shard entirely.
func (l *Log) mergeRecord(r streamRec, target op.SI) {
	if r.obj != "" {
		sh := l.absorbShardFor(r.obj)
		sh.mu.Lock()
		pair, hit := sh.absorbed[r.lsn]
		if hit {
			delete(sh.absorbed, r.lsn)
		}
		if c, ok := sh.cands[r.obj]; ok && c.lsn == r.lsn {
			delete(sh.cands, r.obj) // merged: no longer absorbable
		}
		sh.mu.Unlock()
		if hit && pair.by <= target {
			// The absorber is merged in this same batch: elide.
			marker := NewAbsorbedRecord(pair.obj, pair.payload, pair.by)
			marker.LSN = r.lsn
			before := len(l.mergedBuf)
			l.mergedBuf = AppendFrame(l.mergedBuf, marker)
			elided := int64(len(r.frame)) - int64(len(l.mergedBuf)-before)
			l.stats.Absorbed++
			l.stats.BytesElided += elided
			l.obs.absorbHits.Inc()
			l.obs.absorbBytesElided.Add(elided)
			l.flight.Load().AbsorbCommit(pair.obj, r.lsn, pair.by, elided)
			l.mergedLast = r.lsn
			l.mergedCount++
			return
		}
		// Either never absorbed, or the force horizon covers the record but
		// not its absorber: the record must survive a crash in full.
	}
	l.mergedBuf = append(l.mergedBuf, r.frame...)
	l.mergedLast = r.lsn
	l.mergedCount++
}
