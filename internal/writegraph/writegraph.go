// Package writegraph implements the paper's write graphs: the write graph W
// of Lomet & Tuttle [8] (Figure 3) and this paper's refined write graph rW
// (Figure 6, procedure addop_rW).
//
// The cache manager's central problem is that installation-graph nodes are
// operations but the cache manager writes objects.  A write graph groups
// uninstalled operations into nodes; the objects vars(n) of a node must be
// flushed atomically to install ops(n), and nodes must be flushed in write
// graph (edge) order.
//
// The two graphs differ in one fundamental way.  In W, vars(n) = Writes(n)
// and |vars(n)| grows monotonically until flushed.  In rW, a subsequent
// blind update of an object X can make the value of X written by node n
// "unexposed", letting the cache manager remove X from vars(n): n's
// operations can then be installed without flushing X at all.  Extra rW
// edges (write-write and inverse write-read) preserve correctness.
package writegraph

import (
	"fmt"
	"sort"

	"logicallog/internal/graph"
	"logicallog/internal/op"
)

// Policy selects which write graph is maintained.
type Policy uint8

const (
	// PolicyW maintains the write graph W of [8]: nodes merge on writeset
	// overlap and flush sets never shrink.
	PolicyW Policy = iota
	// PolicyRW maintains the refined write graph rW of this paper:
	// unexposed objects are removed from other nodes' flush sets.
	PolicyRW
)

func (p Policy) String() string {
	switch p {
	case PolicyW:
		return "W"
	case PolicyRW:
		return "rW"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// node is the internal node state.  Table 1 of the paper:
//
//	ops(n)     operations associated with n (conflict order)
//	vars(n)    subset of Writes(n) flushed to install ops(n)
//	Reads(n)   union of readsets
//	Writes(n)  union of writesets
//	Notx(n)    Writes(n) − vars(n): the unexposed objects of n
//	Lastw(n,X) last value (here: LSN of last write) of X written by ops(n)
type node struct {
	id     graph.NodeID
	ops    []*op.Operation
	vars   map[op.ObjectID]struct{}
	reads  map[op.ObjectID]struct{}
	writes map[op.ObjectID]struct{}
	lastw  map[op.ObjectID]op.SI
}

func (n *node) notx() []op.ObjectID {
	var out []op.ObjectID
	//lint:ignore replaydeterminism membership filter is order-independent; canonicalized below
	for x := range n.writes {
		if _, ok := n.vars[x]; !ok {
			out = append(out, x)
		}
	}
	return op.Canonicalize(out)
}

// Graph is a write graph under a policy.  It is maintained incrementally:
// AddOp corresponds to the arrival of a logged operation at the cache
// manager, Remove to PurgeCache installing a minimal node.
//
// Graph is not safe for concurrent use; the cache manager serializes access.
type Graph struct {
	policy Policy
	g      *graph.Digraph
	nodes  map[graph.NodeID]*node
	nextID graph.NodeID

	// byVar maps an object to the unique node holding it in vars.  The
	// paper: "each X is a member of only one vars(p) for all p".
	byVar map[op.ObjectID]graph.NodeID
	// lastWriter maps an object to the node containing its latest
	// (uninstalled) writer, used to resolve Lastw(p,X) readers.
	lastWriter map[op.ObjectID]graph.NodeID
	// readersOfLast maps an object X to the nodes containing operations
	// that read the value written by X's latest writer (reset whenever X
	// is rewritten).  These nodes get inverse write-read edges q -> p when
	// X becomes unexposed in p.
	readersOfLast map[op.ObjectID]map[graph.NodeID]struct{}

	// cycleRisk is set when the current AddOp adds an edge or merges two
	// or more existing nodes — the only mutations that can turn the
	// (invariantly acyclic) graph cyclic.  newEdges and mergedNodes record
	// exactly which edges/survivors this AddOp introduced so that
	// collapseCyclesAround can prove acyclicity with a bounded local
	// reachability probe instead of a global SCC pass, keeping a long run
	// of blind writes (and their redo replay) linear instead of quadratic
	// in the graph size.
	cycleRisk   bool
	newEdges    [][2]graph.NodeID
	mergedNodes []graph.NodeID

	// stats
	merges        int
	cycleCollapse int
}

// New returns an empty write graph under the given policy.
func New(policy Policy) *Graph {
	return &Graph{
		policy:        policy,
		g:             graph.New(),
		nodes:         make(map[graph.NodeID]*node),
		nextID:        1,
		byVar:         make(map[op.ObjectID]graph.NodeID),
		lastWriter:    make(map[op.ObjectID]graph.NodeID),
		readersOfLast: make(map[op.ObjectID]map[graph.NodeID]struct{}),
	}
}

// Policy returns the graph's policy.
func (wg *Graph) Policy() Policy { return wg.policy }

// Len returns the number of nodes.
func (wg *Graph) Len() int { return len(wg.nodes) }

// OpCount returns the number of uninstalled operations across all nodes.
func (wg *Graph) OpCount() int {
	n := 0
	//lint:ignore replaydeterminism commutative sum
	for _, nd := range wg.nodes {
		n += len(nd.ops)
	}
	return n
}

// Merges returns how many node merges have occurred (exp/writeset overlap).
func (wg *Graph) Merges() int { return wg.merges }

// CycleCollapses returns how many SCC collapses were needed.
func (wg *Graph) CycleCollapses() int { return wg.cycleCollapse }

// AddOp assigns a freshly logged operation to a write-graph node, merging
// and re-wiring per the policy, and returns the node id the operation ended
// up in (post any cycle collapse).  The operation must have an LSN greater
// than every operation already present (conflict order).
func (wg *Graph) AddOp(o *op.Operation) (graph.NodeID, error) {
	if o.LSN == op.NilSI {
		return 0, fmt.Errorf("writegraph: operation %s has no LSN", o)
	}
	switch wg.policy {
	case PolicyW:
		return wg.addOpW(o)
	case PolicyRW:
		return wg.addOpRW(o)
	}
	return 0, fmt.Errorf("writegraph: unknown policy %v", wg.policy)
}

// addOpW implements the incremental equivalent of Figure 3's first collapse:
// nodes whose writesets intersect merge (transitive closure of writeset
// overlap), vars(n) = Writes(n), and installation read-write edges order
// nodes.  Cycles collapse (second collapse of Figure 3).
func (wg *Graph) addOpW(o *op.Operation) (graph.NodeID, error) {
	// Record read-write edges first: nodes that previously read an object
	// this operation writes must be installed before it.
	preds := wg.readWritePredecessors(o)

	// Merge every node whose Writes overlaps writeset(o).
	var mergeIDs []graph.NodeID
	seen := map[graph.NodeID]struct{}{}
	for _, x := range o.WriteSet {
		//lint:ignore replaydeterminism collects a merge set; mergeInto sorts it before picking the survivor
		for id, nd := range wg.nodes {
			if _, ok := nd.writes[x]; ok {
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					mergeIDs = append(mergeIDs, id)
				}
			}
		}
	}
	m := wg.mergeInto(mergeIDs)
	wg.attachOp(m, o, o.WriteSet /* vars gets full writeset */)
	wg.addEdgesFrom(preds, m.id)
	wg.trackReadsWrites(m, o)
	return wg.collapseCyclesAround(m.id), nil
}

// addEdgesFrom adds edges p -> to for every p that still exists (a
// predecessor recorded before a merge may have been absorbed).
func (wg *Graph) addEdgesFrom(preds []graph.NodeID, to graph.NodeID) {
	for _, p := range preds {
		if p == to {
			continue
		}
		if _, ok := wg.nodes[p]; !ok {
			continue
		}
		wg.g.AddEdge(p, to)
		wg.cycleRisk = true
		wg.newEdges = append(wg.newEdges, [2]graph.NodeID{p, to})
	}
}

// addOpRW implements procedure addop_rW of Figure 6.
func (wg *Graph) addOpRW(o *op.Operation) (graph.NodeID, error) {
	exp := o.Exp()
	notexp := o.NotExp()

	// Read-write edges: nodes p with Reads(p) ∩ writeset(o) ≠ ∅ precede m.
	preds := wg.readWritePredecessors(o)

	// Record, before any merging re-points byVar, which node currently
	// holds each not-exposed object in its vars.
	prevHolder := make(map[op.ObjectID]graph.NodeID, len(notexp))
	for _, x := range notexp {
		if id, ok := wg.byVar[x]; ok {
			prevHolder[x] = id
		}
	}

	// Merge nodes n with vars(n) ∩ exp(o) ≠ ∅ into m.
	var mergeIDs []graph.NodeID
	seen := map[graph.NodeID]struct{}{}
	for _, x := range exp {
		if id, ok := wg.byVar[x]; ok {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				mergeIDs = append(mergeIDs, id)
			}
		}
	}
	m := wg.mergeInto(mergeIDs)
	wg.attachOp(m, o, o.WriteSet)
	wg.addEdgesFrom(preds, m.id)

	// For each p ≠ m with vars(p) ∩ notexp(o) ≠ ∅: remove the not-exposed
	// objects from vars(p); add write-write edge p -> m; and add inverse
	// write-read edges q -> p for nodes q reading Lastw(p,X).
	for _, x := range notexp {
		pid, ok := prevHolder[x]
		if !ok || pid == m.id {
			continue
		}
		p, alive := wg.nodes[pid]
		if !alive {
			// The holder was absorbed into m by the exp merge; the object
			// legitimately stays in vars(m).
			continue
		}
		delete(p.vars, x)
		// attachOp already re-pointed byVar[x] to m.
		wg.g.AddEdge(pid, m.id) // write-write: o ∈ must(op) for op ∈ ops(p)
		wg.cycleRisk = true
		wg.newEdges = append(wg.newEdges, [2]graph.NodeID{pid, m.id})
		// Inverse write-read edges: readers of the value p last wrote to x
		// must install before p so that x is truly unexposed when p's vars
		// are flushed without x.
		if wg.lastWriter[x] == pid {
			//lint:ignore replaydeterminism edge-set insertion; the digraph coalesces edges, so order cannot matter
			for qid := range wg.readersOfLast[x] {
				if qid != pid && wg.g.HasNode(qid) {
					wg.g.AddEdge(qid, pid)
					wg.cycleRisk = true
					wg.newEdges = append(wg.newEdges, [2]graph.NodeID{qid, pid})
				}
			}
		}
	}

	wg.trackReadsWrites(m, o)
	return wg.collapseCyclesAround(m.id), nil
}

// readWritePredecessors returns ids of nodes containing operations that read
// any object o writes — installation read-write edges point from them to
// o's node.  The result is sorted: downstream consumers only build edge
// sets today, but the predecessor list must not leak map-iteration order
// into anything replay-visible.
func (wg *Graph) readWritePredecessors(o *op.Operation) []graph.NodeID {
	var out []graph.NodeID
	seen := map[graph.NodeID]struct{}{}
	for _, x := range o.WriteSet {
		//lint:ignore replaydeterminism membership filter is order-independent; sorted below
		for id, nd := range wg.nodes {
			if _, ok := nd.reads[x]; ok {
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					out = append(out, id)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeInto merges the given nodes into one (creating a fresh node if the
// list is empty) and returns the survivor.  Edges are re-pointed; self-edges
// are dropped.
func (wg *Graph) mergeInto(ids []graph.NodeID) *node {
	if len(ids) == 0 {
		nd := &node{
			id:     wg.nextID,
			vars:   make(map[op.ObjectID]struct{}),
			reads:  make(map[op.ObjectID]struct{}),
			writes: make(map[op.ObjectID]struct{}),
			lastw:  make(map[op.ObjectID]op.SI),
		}
		wg.nextID++
		wg.nodes[nd.id] = nd
		wg.g.AddNode(nd.id)
		return nd
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	survivor := wg.nodes[ids[0]]
	if len(ids) > 1 {
		// Collapsing distinct nodes can close a cycle through any path
		// that ran between them, even though no edge is added.
		wg.cycleRisk = true
		wg.mergedNodes = append(wg.mergedNodes, survivor.id)
	}
	for _, id := range ids[1:] {
		wg.absorb(survivor, id)
		wg.merges++
	}
	return survivor
}

// absorb merges node id into survivor and deletes it.
func (wg *Graph) absorb(survivor *node, id graph.NodeID) {
	victim := wg.nodes[id]
	survivor.ops = mergeOps(survivor.ops, victim.ops)
	//lint:ignore replaydeterminism set union; resulting maps identical in any order
	for x := range victim.vars {
		survivor.vars[x] = struct{}{}
		wg.byVar[x] = survivor.id
	}
	//lint:ignore replaydeterminism set union; resulting maps identical in any order
	for x := range victim.reads {
		survivor.reads[x] = struct{}{}
	}
	//lint:ignore replaydeterminism set union; resulting maps identical in any order
	for x := range victim.writes {
		survivor.writes[x] = struct{}{}
		if wg.lastWriter[x] == id {
			wg.lastWriter[x] = survivor.id
		}
	}
	//lint:ignore replaydeterminism commutative max-fold per key
	for x, l := range victim.lastw {
		if l > survivor.lastw[x] {
			survivor.lastw[x] = l
		}
	}
	// Re-point edges.
	for _, s := range wg.g.Succ(id) {
		if s != survivor.id {
			wg.g.AddEdge(survivor.id, s)
		}
	}
	for _, p := range wg.g.Pred(id) {
		if p != survivor.id {
			wg.g.AddEdge(p, survivor.id)
		}
	}
	wg.g.RemoveNode(id)
	delete(wg.nodes, id)
	// Re-point reader registries.
	//lint:ignore replaydeterminism independent per-entry re-point; final maps identical in any order
	for _, readers := range wg.readersOfLast {
		if _, ok := readers[id]; ok {
			delete(readers, id)
			readers[survivor.id] = struct{}{}
		}
	}
}

// attachOp appends o to nd and adds varsToAdd into vars(nd), re-pointing the
// byVar registry.
func (wg *Graph) attachOp(nd *node, o *op.Operation, varsToAdd []op.ObjectID) {
	nd.ops = append(nd.ops, o)
	for _, x := range varsToAdd {
		nd.vars[x] = struct{}{}
		// Under rW an object may currently sit in another node's vars only
		// if x ∈ exp(o) — but then that node was merged into nd.  Under W
		// the overlap merge guarantees the same.  So this re-point is safe.
		wg.byVar[x] = nd.id
	}
	for _, x := range o.ReadSet {
		nd.reads[x] = struct{}{}
	}
	for _, x := range o.WriteSet {
		nd.writes[x] = struct{}{}
		nd.lastw[x] = o.LSN
	}
}

// trackReadsWrites updates the Lastw reader registries for o, which now
// lives in nd.  Reads happen before writes within an operation.
func (wg *Graph) trackReadsWrites(nd *node, o *op.Operation) {
	for _, x := range o.ReadSet {
		if _, ok := wg.readersOfLast[x]; !ok {
			wg.readersOfLast[x] = make(map[graph.NodeID]struct{})
		}
		wg.readersOfLast[x][nd.id] = struct{}{}
	}
	for _, x := range o.WriteSet {
		wg.lastWriter[x] = nd.id
		wg.readersOfLast[x] = make(map[graph.NodeID]struct{})
	}
}

// collapseCyclesAround collapses every strongly connected component of size
// greater than one (the second collapse of Figure 3, applied after each
// incremental insertion) and returns the id of the node that now holds the
// operations of start.  A global pass is needed: the write-write and inverse
// write-read edges added by addop_rW can close cycles anywhere in the graph,
// not only around the freshly inserted node.
func (wg *Graph) collapseCyclesAround(start graph.NodeID) graph.NodeID {
	// Fast path 1: if this insertion added no edges and merged at most one
	// node, the graph was acyclic before and still is.
	if !wg.cycleRisk {
		return start
	}
	wg.cycleRisk = false
	// Fast path 2: any new cycle must pass through a freshly added edge or
	// a merge survivor; a bounded local reachability probe over just those
	// proves acyclicity without the global SCC pass.  This is what keeps a
	// long run of blind writes — and their redo replay, where the graph
	// holds every uninstalled operation — linear instead of quadratic.
	if !wg.maybeCyclic() {
		return start
	}
	for {
		collapsed := false
		for _, comp := range wg.g.SCC() {
			if len(comp) <= 1 {
				continue
			}
			collapsed = true
			wg.cycleCollapse++
			survivor := wg.nodes[comp[0]]
			for _, id := range comp[1:] {
				if id == start {
					start = survivor.id
				}
				wg.absorb(survivor, id)
			}
		}
		if !collapsed {
			return start
		}
		// Merging SCCs computed from a single snapshot yields the
		// condensation, which is acyclic; the loop re-checks to defend
		// against interaction between multiple merges in one pass.
	}
}

// cycleProbeBudget bounds the total nodes maybeCyclic may visit per AddOp;
// past it the probe answers "maybe" and the full SCC pass decides.
const cycleProbeBudget = 512

// maybeCyclic reports whether this AddOp could have closed a cycle.  The
// graph was acyclic before the insertion, so a new cycle must traverse a
// fresh edge (u, v) — meaning u is reachable from v — or pass through a
// merge survivor (collapsing two nodes joins every path that ran between
// them).  False is definitive; true hands off to the SCC collapse.
func (wg *Graph) maybeCyclic() bool {
	defer func() {
		wg.newEdges = wg.newEdges[:0]
		wg.mergedNodes = wg.mergedNodes[:0]
	}()
	budget := cycleProbeBudget
	for _, e := range wg.newEdges {
		if !wg.g.HasNode(e[0]) || !wg.g.HasNode(e[1]) {
			continue // endpoint absorbed by a later merge in the same AddOp
		}
		if wg.pathExists(e[1], e[0], make(map[graph.NodeID]bool), &budget) {
			return true
		}
	}
	for _, s := range wg.mergedNodes {
		if !wg.g.HasNode(s) {
			continue
		}
		visited := make(map[graph.NodeID]bool)
		for _, succ := range wg.g.Succ(s) {
			if wg.pathExists(succ, s, visited, &budget) {
				return true
			}
		}
	}
	return false
}

// pathExists reports whether target is reachable from from, decrementing
// *budget per visited node; an exhausted budget answers true (conservative:
// the caller falls back to the full SCC pass).
func (wg *Graph) pathExists(from, target graph.NodeID, visited map[graph.NodeID]bool, budget *int) bool {
	if from == target {
		return true
	}
	if visited[from] {
		return false
	}
	if *budget <= 0 {
		return true
	}
	*budget--
	visited[from] = true
	for _, s := range wg.g.Succ(from) {
		if wg.pathExists(s, target, visited, budget) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Inspection.
// ---------------------------------------------------------------------------

// NodeView is a read-only snapshot of a write-graph node.
type NodeView struct {
	ID graph.NodeID
	// Ops are the node's uninstalled operations in conflict order.
	Ops []*op.Operation
	// Vars is the atomic flush set vars(n), canonical order.
	Vars []op.ObjectID
	// Notx is Writes(n) − vars(n): objects installed without flushing.
	Notx []op.ObjectID
	// Reads and Writes are the unions over Ops.
	Reads, Writes []op.ObjectID
	// Lastw maps each written object to the LSN of its last write in Ops.
	Lastw map[op.ObjectID]op.SI
}

// Node returns a snapshot of the node with the given id, or nil.
func (wg *Graph) Node(id graph.NodeID) *NodeView {
	nd, ok := wg.nodes[id]
	if !ok {
		return nil
	}
	return wg.view(nd)
}

func (wg *Graph) view(nd *node) *NodeView {
	v := &NodeView{
		ID:     nd.id,
		Ops:    append([]*op.Operation(nil), nd.ops...),
		Vars:   setToSlice(nd.vars),
		Notx:   nd.notx(),
		Reads:  setToSlice(nd.reads),
		Writes: setToSlice(nd.writes),
		Lastw:  make(map[op.ObjectID]op.SI, len(nd.lastw)),
	}
	//lint:ignore replaydeterminism map copy; resulting map identical in any order
	for x, l := range nd.lastw {
		v.Lastw[x] = l
	}
	return v
}

// Nodes returns snapshots of all nodes, ordered by id.
func (wg *Graph) Nodes() []*NodeView {
	ids := make([]graph.NodeID, 0, len(wg.nodes))
	//lint:ignore replaydeterminism key collection is order-independent; sorted below
	for id := range wg.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*NodeView, len(ids))
	for i, id := range ids {
		out[i] = wg.view(wg.nodes[id])
	}
	return out
}

// Minimal returns ids of nodes with no predecessors — the flush candidates
// of PurgeCache.
func (wg *Graph) Minimal() []graph.NodeID { return wg.g.Minimal() }

// NodeOf returns the id of the node holding x in its vars, if any.
func (wg *Graph) NodeOf(x op.ObjectID) (graph.NodeID, bool) {
	id, ok := wg.byVar[x]
	return id, ok
}

// NodeOfOp returns the id of the node containing the operation with the
// given LSN, if any.
func (wg *Graph) NodeOfOp(lsn op.SI) (graph.NodeID, bool) {
	//lint:ignore replaydeterminism an LSN lives in exactly one node, so at most one iteration matches
	for id, nd := range wg.nodes {
		for _, o := range nd.ops {
			if o.LSN == lsn {
				return id, true
			}
		}
	}
	return 0, false
}

// HasEdge reports whether the write graph orders u before v.
func (wg *Graph) HasEdge(u, v graph.NodeID) bool { return wg.g.HasEdge(u, v) }

// Remove installs node id: it must be minimal (no predecessors).  It returns
// a snapshot of the removed node (whose Vars the caller must have flushed
// atomically and whose Notx objects are installed without flushing) and
// detaches it from the graph.  Per the paper, removal never creates cycles.
func (wg *Graph) Remove(id graph.NodeID) (*NodeView, error) {
	nd, ok := wg.nodes[id]
	if !ok {
		return nil, fmt.Errorf("writegraph: no node %d", id)
	}
	if wg.g.InDegree(id) != 0 {
		return nil, fmt.Errorf("writegraph: node %d is not minimal (in-degree %d)", id, wg.g.InDegree(id))
	}
	v := wg.view(nd)
	//lint:ignore replaydeterminism independent per-key deletes; final maps identical in any order
	for x := range nd.vars {
		if wg.byVar[x] == id {
			delete(wg.byVar, x)
		}
	}
	//lint:ignore replaydeterminism independent per-key deletes; final maps identical in any order
	for x, w := range wg.lastWriter {
		if w == id {
			delete(wg.lastWriter, x)
			delete(wg.readersOfLast, x)
		}
	}
	//lint:ignore replaydeterminism independent per-entry deletes; final maps identical in any order
	for _, readers := range wg.readersOfLast {
		delete(readers, id)
	}
	wg.g.RemoveNode(id)
	delete(wg.nodes, id)
	return v, nil
}

// IdentityBreakupPlan returns, for node id, the objects the cache manager
// should identity-write (W_IP) so that the node's atomic flush set shrinks
// to a single object (Section 4).  It returns all but one of vars(n),
// preferring to retain the object with the highest last-write LSN (a heuristic:
// hottest object stays, and at least one object need not be logged).
// The caller logs identity writes for the returned objects and feeds them
// back through AddOp; under rW each identity write removes its object from
// vars(n).
func (wg *Graph) IdentityBreakupPlan(id graph.NodeID) ([]op.ObjectID, error) {
	nd, ok := wg.nodes[id]
	if !ok {
		return nil, fmt.Errorf("writegraph: no node %d", id)
	}
	if len(nd.vars) <= 1 {
		return nil, nil
	}
	vars := setToSlice(nd.vars)
	// Retain the var with the max Lastw; identity-write the rest.
	keep := vars[0]
	for _, x := range vars[1:] {
		if nd.lastw[x] > nd.lastw[keep] {
			keep = x
		}
	}
	var plan []op.ObjectID
	for _, x := range vars {
		if x != keep {
			plan = append(plan, x)
		}
	}
	return plan, nil
}

// Validate checks the graph's structural invariants: the underlying digraph
// is consistent and acyclic, each object is in at most one vars set, byVar
// agrees with node contents, and under W vars == Writes for every node.
func (wg *Graph) Validate() error {
	if err := wg.g.Validate(); err != nil {
		return err
	}
	if wg.g.HasCycle() {
		return fmt.Errorf("writegraph: graph has a cycle after collapse")
	}
	seen := map[op.ObjectID]graph.NodeID{}
	//lint:ignore replaydeterminism invariant scan; any violation fails, which one is reported is immaterial
	for id, nd := range wg.nodes {
		if !wg.g.HasNode(id) {
			return fmt.Errorf("writegraph: node %d missing from digraph", id)
		}
		//lint:ignore replaydeterminism invariant scan; any violation fails, which one is reported is immaterial
		for x := range nd.vars {
			if prev, dup := seen[x]; dup {
				return fmt.Errorf("writegraph: object %q in vars of nodes %d and %d", x, prev, id)
			}
			seen[x] = id
			if wg.byVar[x] != id {
				return fmt.Errorf("writegraph: byVar[%q]=%d but object in node %d", x, wg.byVar[x], id)
			}
			if _, ok := nd.writes[x]; !ok {
				return fmt.Errorf("writegraph: node %d has var %q not in Writes", id, x)
			}
		}
		if wg.policy == PolicyW && len(nd.vars) != len(nd.writes) {
			return fmt.Errorf("writegraph: W node %d has vars ⊂ Writes (%d < %d)", id, len(nd.vars), len(nd.writes))
		}
	}
	//lint:ignore replaydeterminism invariant scan; any violation fails, which one is reported is immaterial
	for x, id := range wg.byVar {
		nd, ok := wg.nodes[id]
		if !ok {
			return fmt.Errorf("writegraph: byVar[%q] -> missing node %d", x, id)
		}
		if _, ok := nd.vars[x]; !ok {
			return fmt.Errorf("writegraph: byVar[%q] -> node %d lacking the var", x, id)
		}
	}
	return nil
}

// FlushSetSizes returns the sorted multiset of |vars(n)| across nodes — the
// statistic experiments E3/E4 report.
func (wg *Graph) FlushSetSizes() []int {
	out := make([]int, 0, len(wg.nodes))
	//lint:ignore replaydeterminism size collection is order-independent; sorted below
	for _, nd := range wg.nodes {
		out = append(out, len(nd.vars))
	}
	sort.Ints(out)
	return out
}

func setToSlice(m map[op.ObjectID]struct{}) []op.ObjectID {
	out := make([]op.ObjectID, 0, len(m))
	//lint:ignore replaydeterminism key collection is order-independent; canonicalized below
	for x := range m {
		out = append(out, x)
	}
	return op.Canonicalize(out)
}

func mergeOps(a, b []*op.Operation) []*op.Operation {
	out := make([]*op.Operation, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].LSN <= b[j].LSN {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
