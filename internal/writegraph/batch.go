package writegraph

import (
	"logicallog/internal/graph"
	"logicallog/internal/installgraph"
	"logicallog/internal/op"
)

// BuildW computes the write graph W from a set of uninstalled operations by
// the literal batch procedure of Figure 3:
//
//	T <- transitive closure of O ~ P iff writeset(O) ∩ writeset(P) ≠ ∅
//	V <- collapse In with respect to the equivalence classes of T
//	S <- strongly connected components of V
//	W <- collapse V with respect to S   (making W acyclic)
//
// The result is returned as an incremental Graph (PolicyW) with equivalent
// node contents, so the same inspection API applies.  BuildW exists both as
// the reference implementation the incremental path is tested against and
// for harness use.
func BuildW(history []*op.Operation) (*Graph, error) {
	in, err := installgraph.Build(history)
	if err != nil {
		return nil, err
	}
	// First collapse: transitive closure of writeset overlap.
	nodes := make([]graph.NodeID, 0, len(history))
	for _, o := range history {
		nodes = append(nodes, graph.NodeID(o.LSN))
	}
	var related [][2]graph.NodeID
	for i, o := range history {
		for _, p := range history[i+1:] {
			if writesetsOverlap(o, p) {
				related = append(related, [2]graph.NodeID{graph.NodeID(o.LSN), graph.NodeID(p.LSN)})
			}
		}
	}
	part1 := graph.TransitiveClosurePartition(nodes, related)
	v, err := in.Digraph().Collapse(part1)
	if err != nil {
		return nil, err
	}
	// Second collapse: SCC condensation makes the result acyclic.
	part2 := v.CondensationPartition()
	w, err := v.Collapse(part2)
	if err != nil {
		return nil, err
	}

	// Materialize as a Graph.  Class representative for an operation LSN l:
	// part2[part1[l]].
	out := New(PolicyW)
	classOf := func(l op.SI) graph.NodeID { return part2[part1[graph.NodeID(l)]] }
	byClass := map[graph.NodeID]*node{}
	for _, o := range history {
		c := classOf(o.LSN)
		nd, ok := byClass[c]
		if !ok {
			nd = &node{
				id:     out.nextID,
				vars:   make(map[op.ObjectID]struct{}),
				reads:  make(map[op.ObjectID]struct{}),
				writes: make(map[op.ObjectID]struct{}),
				lastw:  make(map[op.ObjectID]op.SI),
			}
			out.nextID++
			byClass[c] = nd
			out.nodes[nd.id] = nd
			out.g.AddNode(nd.id)
		}
		out.attachOp(nd, o, o.WriteSet)
		out.trackReadsWrites(nd, o)
	}
	for _, u := range w.Nodes() {
		for _, s := range w.Succ(u) {
			out.g.AddEdge(byClass[u].id, byClass[s].id)
		}
	}
	return out, nil
}

func writesetsOverlap(o, p *op.Operation) bool {
	for _, x := range o.WriteSet {
		if p.Writes(x) {
			return true
		}
	}
	return false
}
