package writegraph

import (
	"math/rand"
	"reflect"
	"testing"

	"logicallog/internal/graph"
	"logicallog/internal/op"
)

// mkop crafts an operation with explicit read/write sets.  The write graph
// never executes operations, so FuncIDs here are placeholders.
func mkop(lsn op.SI, reads, writes []op.ObjectID) *op.Operation {
	o := op.NewLogical("test.fn", nil, reads, writes)
	o.LSN = lsn
	return o
}

func addAll(t *testing.T, wg *Graph, ops ...*op.Operation) {
	t.Helper()
	for _, o := range ops {
		if _, err := wg.AddOp(o); err != nil {
			t.Fatalf("AddOp(%s): %v", o, err)
		}
		if err := wg.Validate(); err != nil {
			t.Fatalf("after AddOp(%s): %v", o, err)
		}
	}
}

func varsOfOp(t *testing.T, wg *Graph, lsn op.SI) []op.ObjectID {
	t.Helper()
	id, ok := wg.NodeOfOp(lsn)
	if !ok {
		t.Fatalf("no node contains op %d", lsn)
	}
	return wg.Node(id).Vars
}

func TestPolicyString(t *testing.T) {
	if PolicyW.String() != "W" || PolicyRW.String() != "rW" || Policy(9).String() != "Policy(9)" {
		t.Error("Policy.String wrong")
	}
}

func TestAddOpRequiresLSN(t *testing.T) {
	wg := New(PolicyRW)
	if _, err := wg.AddOp(op.NewPhysicalWrite("X", nil)); err == nil {
		t.Error("AddOp must reject un-logged operations")
	}
}

// TestFigure1FlushOrder reproduces the flush dependency of Figure 1(a):
// after A (Y <- f(X,Y)) and B (X <- g(Y)), Y must flush before X.
func TestFigure1FlushOrder(t *testing.T) {
	for _, policy := range []Policy{PolicyW, PolicyRW} {
		wg := New(policy)
		a := mkop(1, []op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"})
		b := mkop(2, []op.ObjectID{"Y"}, []op.ObjectID{"X"})
		addAll(t, wg, a, b)
		if wg.Len() != 2 {
			t.Fatalf("%v: Len = %d, want 2", policy, wg.Len())
		}
		na, _ := wg.NodeOfOp(1)
		nb, _ := wg.NodeOfOp(2)
		if !wg.HasEdge(na, nb) {
			t.Errorf("%v: missing flush-order edge Y-node -> X-node", policy)
		}
		mins := wg.Minimal()
		if len(mins) != 1 || mins[0] != na {
			t.Errorf("%v: minimal nodes = %v, want only A's node %d", policy, mins, na)
		}
	}
}

// TestSection4CycleExample reproduces the Section 4 example: (a) Y=f(X,Y);
// (b) X=g(Y); (c) Y=h(Y).  When (c) arrives, a cycle forms in rW between the
// nodes holding Y and X and is collapsed into a single node with a
// multi-object flush set {X,Y}.
func TestSection4CycleExample(t *testing.T) {
	wg := New(PolicyRW)
	a := mkop(1, []op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"}) // application read form
	b := mkop(2, []op.ObjectID{"Y"}, []op.ObjectID{"X"})      // application write form
	c := mkop(3, []op.ObjectID{"Y"}, []op.ObjectID{"Y"})      // application execute form
	addAll(t, wg, a, b)
	if wg.Len() != 2 {
		t.Fatalf("before (c): Len = %d, want 2", wg.Len())
	}
	addAll(t, wg, c)
	if wg.Len() != 1 {
		t.Fatalf("after (c): Len = %d, want 1 (cycle collapsed)", wg.Len())
	}
	if wg.CycleCollapses() == 0 {
		t.Error("expected a recorded cycle collapse")
	}
	nv := wg.Nodes()[0]
	if !reflect.DeepEqual(nv.Vars, []op.ObjectID{"X", "Y"}) {
		t.Errorf("collapsed vars = %v, want [X Y]", nv.Vars)
	}
	if len(nv.Ops) != 3 {
		t.Errorf("collapsed ops = %d, want 3", len(nv.Ops))
	}
	// Conflict order within the node is preserved.
	for i := 1; i < len(nv.Ops); i++ {
		if nv.Ops[i].LSN <= nv.Ops[i-1].LSN {
			t.Error("ops not in conflict order after collapse")
		}
	}
}

// TestSection4IdentityWriteBreakup continues the cycle example: the cache
// manager issues W_IP(X), which removes X from the collapsed node's flush
// set, leaving two single-object nodes that flush Y then X.
func TestSection4IdentityWriteBreakup(t *testing.T) {
	wg := New(PolicyRW)
	addAll(t, wg,
		mkop(1, []op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"}),
		mkop(2, []op.ObjectID{"Y"}, []op.ObjectID{"X"}),
		mkop(3, []op.ObjectID{"Y"}, []op.ObjectID{"Y"}),
	)
	big, _ := wg.NodeOfOp(1)
	plan, err := wg.IdentityBreakupPlan(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 {
		t.Fatalf("breakup plan = %v, want one object", plan)
	}
	// The plan prefers to keep the hottest object (Y, last written at LSN 3),
	// so it identity-writes X.
	if plan[0] != "X" {
		t.Errorf("plan = %v, want [X]", plan)
	}
	wip := op.NewIdentityWrite("X", []byte("xval"))
	wip.LSN = 4
	addAll(t, wg, wip)
	if wg.Len() != 2 {
		t.Fatalf("after W_IP: Len = %d, want 2", wg.Len())
	}
	bigView := wg.Node(big)
	if !reflect.DeepEqual(bigView.Vars, []op.ObjectID{"Y"}) {
		t.Errorf("big node vars = %v, want [Y]", bigView.Vars)
	}
	if !reflect.DeepEqual(bigView.Notx, []op.ObjectID{"X"}) {
		t.Errorf("big node Notx = %v, want [X]", bigView.Notx)
	}
	wipNode, _ := wg.NodeOfOp(4)
	if !wg.HasEdge(big, wipNode) {
		t.Error("missing write-write edge big -> W_IP node")
	}
	// Flush order: big (Y) first, then the identity-write node (X).
	if mins := wg.Minimal(); len(mins) != 1 || mins[0] != big {
		t.Errorf("Minimal = %v, want [%d]", wg.Minimal(), big)
	}
	// Install big by flushing only Y; all three logical ops install.
	view, err := wg.Remove(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Ops) != 3 || !reflect.DeepEqual(view.Vars, []op.ObjectID{"Y"}) {
		t.Errorf("installed view = ops %d vars %v", len(view.Ops), view.Vars)
	}
	if mins := wg.Minimal(); len(mins) != 1 || mins[0] != wipNode {
		t.Errorf("after install, Minimal = %v", mins)
	}
}

// TestFigure7Refinement reproduces Figure 7: A writes {X,Y}; B reads X;
// C blindly rewrites X.  Under W, X and Y stay in one atomic flush set.
// Under rW, C's blind write makes A's X unexposed: X leaves A's flush set,
// every node flushes a single object, and the inverse write-read edge forces
// B's node to install before A's.
func TestFigure7Refinement(t *testing.T) {
	opA := mkop(1, nil, []op.ObjectID{"X", "Y"})           // blind multi-object write
	opB := mkop(2, []op.ObjectID{"X"}, []op.ObjectID{"Z"}) // reads X written by A
	opC := mkop(3, nil, []op.ObjectID{"X"})                // blind rewrite of X

	w := New(PolicyW)
	addAll(t, w, opA.Clone(), opB.Clone(), opC.Clone())
	// W: A and C share writeset object X -> merged; vars = {X,Y}.
	na, _ := w.NodeOfOp(1)
	nc, _ := w.NodeOfOp(3)
	if na != nc {
		t.Error("W must merge A and C (writeset overlap)")
	}
	if got := w.Node(na).Vars; !reflect.DeepEqual(got, []op.ObjectID{"X", "Y"}) {
		t.Errorf("W vars = %v, want [X Y]", got)
	}

	rw := New(PolicyRW)
	addAll(t, rw, opA.Clone(), opB.Clone(), opC.Clone())
	if rw.Len() != 3 {
		t.Fatalf("rW Len = %d, want 3", rw.Len())
	}
	ra, _ := rw.NodeOfOp(1)
	rb, _ := rw.NodeOfOp(2)
	rc, _ := rw.NodeOfOp(3)
	aView := rw.Node(ra)
	if !reflect.DeepEqual(aView.Vars, []op.ObjectID{"Y"}) {
		t.Errorf("rW A vars = %v, want [Y] (X removed)", aView.Vars)
	}
	if !reflect.DeepEqual(aView.Notx, []op.ObjectID{"X"}) {
		t.Errorf("rW A Notx = %v, want [X]", aView.Notx)
	}
	if got := rw.Node(rc).Vars; !reflect.DeepEqual(got, []op.ObjectID{"X"}) {
		t.Errorf("rW C vars = %v, want [X]", got)
	}
	// Write-write edge A -> C: C ∈ must of A's ops.
	if !rw.HasEdge(ra, rc) {
		t.Error("rW missing write-write edge A -> C")
	}
	// Inverse write-read edge B -> A: B read Lastw(A,X), so B must install
	// before A flushes without X.
	if !rw.HasEdge(rb, ra) {
		t.Error("rW missing inverse write-read edge B -> A")
	}
	// Every rW flush set is a single object.
	if sizes := rw.FlushSetSizes(); !reflect.DeepEqual(sizes, []int{1, 1, 1}) {
		t.Errorf("rW flush set sizes = %v, want [1 1 1]", sizes)
	}
	// Install order: B (Z), then A (Y), then C (X).
	order := []graph.NodeID{}
	for rw.Len() > 0 {
		mins := rw.Minimal()
		if len(mins) == 0 {
			t.Fatal("no minimal node")
		}
		if _, err := rw.Remove(mins[0]); err != nil {
			t.Fatal(err)
		}
		order = append(order, mins[0])
	}
	if !reflect.DeepEqual(order, []graph.NodeID{rb, ra, rc}) {
		t.Errorf("install order = %v, want [B A C] = [%d %d %d]", order, rb, ra, rc)
	}
}

func TestRemoveRejectsNonMinimal(t *testing.T) {
	wg := New(PolicyRW)
	addAll(t, wg,
		mkop(1, []op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"}),
		mkop(2, []op.ObjectID{"Y"}, []op.ObjectID{"X"}),
	)
	nb, _ := wg.NodeOfOp(2)
	if _, err := wg.Remove(nb); err == nil {
		t.Error("Remove of non-minimal node must fail")
	}
	if _, err := wg.Remove(999); err == nil {
		t.Error("Remove of unknown node must fail")
	}
}

func TestWVarsNeverShrink(t *testing.T) {
	// The paper: "For a node n of W, |vars(n)| is monotonically increasing".
	wg := New(PolicyW)
	addAll(t, wg,
		mkop(1, nil, []op.ObjectID{"X", "Y"}),
		mkop(2, nil, []op.ObjectID{"X"}), // blind rewrite: W keeps X in the set
	)
	if wg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", wg.Len())
	}
	if got := wg.Nodes()[0].Vars; !reflect.DeepEqual(got, []op.ObjectID{"X", "Y"}) {
		t.Errorf("W vars = %v, want [X Y]", got)
	}
	if len(wg.Nodes()[0].Notx) != 0 {
		t.Error("W nodes must have empty Notx")
	}
}

func TestIdentityBreakupPlanSingleVar(t *testing.T) {
	wg := New(PolicyRW)
	addAll(t, wg, mkop(1, nil, []op.ObjectID{"X"}))
	id, _ := wg.NodeOfOp(1)
	plan, err := wg.IdentityBreakupPlan(id)
	if err != nil || plan != nil {
		t.Errorf("plan for single-var node = %v, %v", plan, err)
	}
	if _, err := wg.IdentityBreakupPlan(404); err == nil {
		t.Error("plan for unknown node must fail")
	}
}

func TestLastwTracksLatestLSN(t *testing.T) {
	wg := New(PolicyRW)
	addAll(t, wg,
		mkop(5, []op.ObjectID{"X"}, []op.ObjectID{"X"}),
		mkop(9, []op.ObjectID{"X"}, []op.ObjectID{"X"}),
	)
	id, _ := wg.NodeOfOp(5)
	if got := wg.Node(id).Lastw["X"]; got != 9 {
		t.Errorf("Lastw[X] = %d, want 9", got)
	}
}

func TestNodeAccessors(t *testing.T) {
	wg := New(PolicyRW)
	if wg.Node(1) != nil {
		t.Error("Node on empty graph")
	}
	if _, ok := wg.NodeOf("X"); ok {
		t.Error("NodeOf on empty graph")
	}
	if _, ok := wg.NodeOfOp(1); ok {
		t.Error("NodeOfOp on empty graph")
	}
	addAll(t, wg, mkop(1, nil, []op.ObjectID{"X"}))
	if id, ok := wg.NodeOf("X"); !ok || wg.Node(id) == nil {
		t.Error("NodeOf/Node roundtrip failed")
	}
	if wg.OpCount() != 1 {
		t.Errorf("OpCount = %d", wg.OpCount())
	}
}

// TestBatchAndIncrementalWAgree checks that the incremental W maintenance
// produces the same node partition (as multisets of op LSNs) and flush-set
// sizes as the literal Figure 3 batch construction, on random histories.
func TestBatchAndIncrementalWAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	objects := []op.ObjectID{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(12)
		history := make([]*op.Operation, 0, n)
		for i := 0; i < n; i++ {
			history = append(history, randomSetOp(rng, objects, op.SI(i+1)))
		}
		batch, err := BuildW(history)
		if err != nil {
			t.Fatal(err)
		}
		inc := New(PolicyW)
		for _, o := range history {
			if _, err := inc.AddOp(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := inc.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := batch.Validate(); err != nil {
			t.Fatalf("trial %d (batch): %v", trial, err)
		}
		bp := partitionSignature(batch)
		ip := partitionSignature(inc)
		if !reflect.DeepEqual(bp, ip) {
			t.Fatalf("trial %d: partitions differ\nbatch: %v\n inc:  %v", trial, bp, ip)
		}
	}
}

// partitionSignature returns each node's sorted op LSNs, sorted by first LSN.
func partitionSignature(wg *Graph) [][]op.SI {
	var sig [][]op.SI
	for _, nv := range wg.Nodes() {
		var lsns []op.SI
		for _, o := range nv.Ops {
			lsns = append(lsns, o.LSN)
		}
		sig = append(sig, lsns)
	}
	// Ops within nodes are already in conflict order; sort nodes by head.
	for i := 0; i < len(sig); i++ {
		for j := i + 1; j < len(sig); j++ {
			if sig[j][0] < sig[i][0] {
				sig[i], sig[j] = sig[j], sig[i]
			}
		}
	}
	return sig
}

func randomSetOp(rng *rand.Rand, objects []op.ObjectID, lsn op.SI) *op.Operation {
	pick := func(n int) []op.ObjectID {
		var out []op.ObjectID
		for i := 0; i < n; i++ {
			out = append(out, objects[rng.Intn(len(objects))])
		}
		return op.Canonicalize(out)
	}
	writes := pick(1 + rng.Intn(2))
	if len(writes) == 0 {
		writes = []op.ObjectID{objects[0]}
	}
	reads := pick(rng.Intn(3))
	return mkop(lsn, reads, writes)
}

// TestRWPropertyInvariants drives random operation streams through rW with
// interleaved installs and checks structural invariants throughout, plus the
// headline refinement property: total flushed-object count under rW never
// exceeds that under W for the same history.
func TestRWPropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	objects := []op.ObjectID{"p", "q", "r", "s"}
	for trial := 0; trial < 40; trial++ {
		rw := New(PolicyRW)
		w := New(PolicyW)
		var lsn op.SI
		rwFlushed, wFlushed := 0, 0
		for step := 0; step < 30; step++ {
			if rng.Intn(4) == 0 {
				// Install a minimal node in each graph.
				if mins := rw.Minimal(); len(mins) > 0 {
					v, err := rw.Remove(mins[rng.Intn(len(mins))])
					if err != nil {
						t.Fatal(err)
					}
					rwFlushed += len(v.Vars)
				}
				if mins := w.Minimal(); len(mins) > 0 {
					v, err := w.Remove(mins[rng.Intn(len(mins))])
					if err != nil {
						t.Fatal(err)
					}
					wFlushed += len(v.Vars)
				}
				continue
			}
			lsn++
			o := randomSetOp(rng, objects, lsn)
			if _, err := rw.AddOp(o.Clone()); err != nil {
				t.Fatal(err)
			}
			if _, err := w.AddOp(o.Clone()); err != nil {
				t.Fatal(err)
			}
			if err := rw.Validate(); err != nil {
				t.Fatalf("trial %d step %d: rW: %v", trial, step, err)
			}
			if err := w.Validate(); err != nil {
				t.Fatalf("trial %d step %d: W: %v", trial, step, err)
			}
		}
		// Drain both graphs completely.
		for rw.Len() > 0 {
			mins := rw.Minimal()
			if len(mins) == 0 {
				t.Fatal("rW stuck: no minimal node")
			}
			v, _ := rw.Remove(mins[0])
			rwFlushed += len(v.Vars)
		}
		for w.Len() > 0 {
			mins := w.Minimal()
			if len(mins) == 0 {
				t.Fatal("W stuck: no minimal node")
			}
			v, _ := w.Remove(mins[0])
			wFlushed += len(v.Vars)
		}
		if rwFlushed > wFlushed {
			t.Errorf("trial %d: rW flushed %d objects > W's %d", trial, rwFlushed, wFlushed)
		}
	}
}

// TestEveryGraphDrains: any write graph must always offer a minimal node
// (acyclicity), so PurgeCache can always make progress.
func TestEveryGraphDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	objects := []op.ObjectID{"x", "y", "z"}
	for _, policy := range []Policy{PolicyW, PolicyRW} {
		wg := New(policy)
		for i := 1; i <= 60; i++ {
			if _, err := wg.AddOp(randomSetOp(rng, objects, op.SI(i))); err != nil {
				t.Fatal(err)
			}
		}
		installed := 0
		for wg.Len() > 0 {
			mins := wg.Minimal()
			if len(mins) == 0 {
				t.Fatalf("%v: stuck with %d nodes", policy, wg.Len())
			}
			v, err := wg.Remove(mins[0])
			if err != nil {
				t.Fatal(err)
			}
			installed += len(v.Ops)
		}
		if installed != 60 {
			t.Errorf("%v: installed %d ops, want 60", policy, installed)
		}
	}
}
