package logicallog_test

import (
	"fmt"

	"logicallog"
)

// Example demonstrates the core loop: register a deterministic
// transformation, apply it as a logical operation (only ids reach the log),
// crash, and recover.
func Example() {
	db, err := logicallog.Open(logicallog.DefaultOptions())
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.RegisterFunc("upper-ascii", func(_ []byte, reads map[string][]byte) (map[string][]byte, error) {
		out := append([]byte(nil), reads["in"]...)
		for i, c := range out {
			if 'a' <= c && c <= 'z' {
				out[i] = c - 32
			}
		}
		return map[string][]byte{"out": out}, nil
	})

	db.Create("in", []byte("logical logging"))
	db.ApplyLogical("upper-ascii", nil, []string{"in"}, []string{"out"})

	if err := db.Sync(); err != nil {
		panic(err)
	}
	db.Crash()
	if _, err := db.Recover(); err != nil {
		panic(err)
	}

	v, _ := db.Get("out")
	fmt.Println(string(v))
	// Output: LOGICAL LOGGING
}

// ExampleDB_Stats shows the logging-cost accounting that makes the paper's
// savings visible: a logical copy of a large object logs no data values.
func ExampleDB_Stats() {
	db, err := logicallog.Open(logicallog.DefaultOptions())
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.RegisterFunc("dup", func(_ []byte, reads map[string][]byte) (map[string][]byte, error) {
		return map[string][]byte{"copy": reads["big"]}, nil
	})
	db.Create("big", make([]byte, 1<<20))
	before := db.Stats().LogValueBytes

	db.ApplyLogical("dup", nil, []string{"big"}, []string{"copy"})

	fmt.Printf("value bytes logged by the 1 MiB copy: %d\n", db.Stats().LogValueBytes-before)
	// Output: value bytes logged by the 1 MiB copy: 0
}
