// Command llserve runs the network front-end over a recoverable engine and
// demonstrates open-for-business-during-redo: on restart after a crash the
// listener opens as soon as log analysis finishes, demand requests redo just
// the dependency chains they touch, and background workers drain the rest.
//
// Usage:
//
//	llserve [-addr host:port] [-backend kv|btree|lsm] [-wal path]
//	        [-inflight N] [-redo-workers N] [-full-recover]
//	        [-debug-addr host:port] [-metrics]
//	llserve -demo
//
// The -demo mode is a self-contained instant-recovery check (used by CI): it
// builds a crashed image, measures time-to-first-served-request under
// on-demand recovery against the full-redo wall time on a twin image, drives
// mixed traffic, kills the server mid-drain, recovers fully, and verifies
// the state is byte-identical to the full-redo oracle.  It exits nonzero if
// the first served request was not strictly faster than full redo or any
// byte diverges.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logicallog/internal/core"
	"logicallog/internal/obs"
	"logicallog/internal/recovery"
	"logicallog/internal/server"
	"logicallog/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	backend := flag.String("backend", "kv", "backend domain: kv, btree, or lsm")
	walPath := flag.String("wal", "llserve.wal", "WAL file path (opened or created)")
	inflight := flag.Int("inflight", 0, "max in-flight operations (0 = server default)")
	redoWorkers := flag.Int("redo-workers", 0, "background redo worker count (0 = GOMAXPROCS)")
	fullRecover := flag.Bool("full-recover", false, "recover fully before opening the listener (classic restart, for comparison)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof, and /metrics on this address")
	metrics := flag.Bool("metrics", false, "print the metrics snapshot at exit")
	demo := flag.Bool("demo", false, "run the self-contained instant-recovery demo and exit")
	flag.Parse()

	if *demo {
		if err := runDemo(*redoWorkers); err != nil {
			fatal(err)
		}
		return
	}
	if err := serve(*addr, *backend, *walPath, *inflight, *redoWorkers, *fullRecover, *debugAddr, *metrics); err != nil {
		fatal(err)
	}
}

func serve(addr, backend, walPath string, inflight, redoWorkers int, fullRecover bool, debugAddr string, metrics bool) error {
	// A log that already has bytes means a prior incarnation: recover it.
	// A fresh (or absent) file means a new store: create the backend.
	fresh := true
	if st, err := os.Stat(walPath); err == nil && st.Size() > 0 {
		fresh = false
	}
	dev, err := wal.OpenFileDevice(walPath)
	if err != nil {
		return err
	}
	defer dev.Close()

	reg := obs.NewRegistry()
	opts := core.DefaultOptions()
	opts.LogDevice = dev
	opts.RedoWorkers = redoWorkers
	opts.Obs = reg
	eng, err := core.New(opts)
	if err != nil {
		return err
	}
	// The recovering engine must know every backend's transforms before the
	// first record replays, whichever backend wrote the log.
	server.RegisterBackends(eng.Registry())

	var drain *recovery.OnDemand
	if !fresh {
		if fullRecover {
			start := time.Now()
			res, err := eng.Recover()
			if err != nil {
				return err
			}
			fmt.Printf("full recovery in %v: scanned %d ops, redone %d\n",
				time.Since(start), res.ScannedOps, res.Redone)
		} else {
			start := time.Now()
			drain, err = eng.RecoverOnDemand()
			if err != nil {
				return err
			}
			fmt.Printf("analysis done in %v: %d dependency chains; opening for business while redo drains\n",
				time.Since(start), drain.Chains())
		}
	}

	dom, err := server.OpenBackend(eng, backend, fresh)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Backend:     dom,
		MaxInFlight: inflight,
		Obs:         reg,
		Drain:       drain,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if debugAddr != "" {
		dln, err := obs.ServeDebug(debugAddr, eng.Metrics)
		if err != nil {
			return err
		}
		defer dln.Close()
		fmt.Printf("debug endpoint on http://%s/debug/pprof/ (metrics at /metrics)\n", dln.Addr())
	}
	fmt.Printf("llserve: %s backend on %s (wal %s)\n", backend, ln.Addr(), walPath)

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("llserve: %v; draining...\n", s)
		srv.Shutdown(5 * time.Second)
		<-serveDone
	case err := <-serveDone:
		if err != nil {
			return err
		}
	}
	// Graceful exit: finish the background drain so the next open starts
	// clean, then force the tail so acknowledged work survives.
	if drain != nil {
		if _, err := drain.Wait(); err != nil {
			return fmt.Errorf("background drain: %w", err)
		}
	}
	if err := eng.Log().Force(); err != nil {
		return err
	}
	if metrics {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(eng.Metrics()); err != nil {
			return err
		}
	}
	fmt.Println("llserve: bye")
	return nil
}

// Demo sizing: enough independent chains that full redo is long while any
// one key's chain is tiny — the flat KV backend keeps chains disjoint.
const (
	demoSeed  = 4242
	demoKeys  = 800
	demoSteps = 8000
	demoVal   = 192
)

func demoKey(i int) []byte { return []byte(fmt.Sprintf("d%04d", i)) }

// buildDemoImage drives the deterministic demo history into a fresh
// in-memory engine and crashes it with a long durable redo suffix.  The
// same seed always yields the same crashed image, so two builds are twins.
func buildDemoImage(redoWorkers int) (*core.Engine, *server.KV, error) {
	opts := core.DefaultOptions()
	opts.RedoWorkers = redoWorkers
	eng, err := core.New(opts)
	if err != nil {
		return nil, nil, err
	}
	kv := server.NewKV(eng)
	rng := rand.New(rand.NewSource(demoSeed))
	for i := 0; i < demoKeys; i++ {
		v := make([]byte, demoVal)
		rng.Read(v)
		if err := kv.Put(demoKey(i), v); err != nil {
			return nil, nil, err
		}
	}
	// Checkpoint early so nearly the whole overwrite phase is redo work.
	if err := eng.CheckpointOnly(); err != nil {
		return nil, nil, err
	}
	for step := 0; step < demoSteps; step++ {
		i := rng.Intn(demoKeys)
		if step%97 == 13 {
			if _, err := kv.Delete(demoKey(i)); err != nil {
				return nil, nil, err
			}
			continue
		}
		v := make([]byte, demoVal)
		rng.Read(v)
		if err := kv.Put(demoKey(i), v); err != nil {
			return nil, nil, err
		}
	}
	if err := eng.Log().Force(); err != nil {
		return nil, nil, err
	}
	eng.Crash()
	return eng, kv, nil
}

func runDemo(redoWorkers int) error {
	fmt.Printf("demo: building twin crashed images (%d keys, %d ops)...\n", demoKeys, demoSteps)

	// Twin 1: classic full-redo restart — the baseline and the oracle.
	full, fullKV, err := buildDemoImage(redoWorkers)
	if err != nil {
		return err
	}
	fullStart := time.Now()
	fres, err := full.Recover()
	if err != nil {
		return err
	}
	fullRedo := time.Since(fullStart)
	oracle := make(map[string][]byte)
	if err := fullKV.Range(nil, nil, func(k, v []byte) bool {
		oracle[string(k)] = append([]byte(nil), v...)
		return true
	}); err != nil {
		return err
	}
	fmt.Printf("demo: full redo replayed %d ops in %v (%d live keys)\n",
		fres.Redone, fullRedo, len(oracle))

	// Twin 2: open for business during redo.  The clock starts before
	// analysis and stops when the first client request is answered.
	eng, kv, err := buildDemoImage(redoWorkers)
	if err != nil {
		return err
	}
	firstStart := time.Now()
	od, err := eng.RecoverOnDemand()
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{Backend: kv, Obs: obs.NewRegistry(), Drain: od})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := server.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	probe := demoKey(demoKeys / 2)
	v, found, err := cl.Get(probe)
	if err != nil {
		return err
	}
	firstServe := time.Since(firstStart)
	want, wantFound := oracle[string(probe)]
	if found != wantFound || (found && !bytes.Equal(v, want)) {
		return fmt.Errorf("demo: first served read of %s diverges from the full-redo oracle", probe)
	}
	pending, inFlight, done := od.ChainCounts()
	fmt.Printf("demo: first request served in %v (chains at that moment: %d pending, %d in flight, %d done)\n",
		firstServe, pending, inFlight, done)

	// Mixed traffic while the background drain races on: verified reads,
	// unforced writes, a range scan.
	rng := rand.New(rand.NewSource(demoSeed * 7))
	dirty := make(map[string]bool)
	for r := 0; r < 300; r++ {
		i := rng.Intn(demoKeys)
		k := demoKey(i)
		switch r % 5 {
		case 4:
			if err := cl.Put(k, []byte(fmt.Sprintf("mid-drain-%d", r))); err != nil {
				return fmt.Errorf("demo traffic Put: %w", err)
			}
			dirty[string(k)] = true
		case 3:
			n := 0
			if err := cl.Range(k, nil, func([]byte, []byte) bool {
				n++
				return n < 16
			}); err != nil {
				return fmt.Errorf("demo traffic Range: %w", err)
			}
		default:
			v, found, err := cl.Get(k)
			if err != nil {
				return fmt.Errorf("demo traffic Get: %w", err)
			}
			if dirty[string(k)] {
				continue
			}
			want, wantFound := oracle[string(k)]
			if found != wantFound || (found && !bytes.Equal(v, want)) {
				return fmt.Errorf("demo: mid-drain read of %s diverges from the full-redo oracle", k)
			}
		}
	}

	// Crash the serving-during-redo incarnation mid-drain: none of the
	// traffic above was forced and replay never appends, so the durable
	// image is unchanged — full recovery must reproduce the oracle exactly.
	_ = cl.Close()
	srv.Shutdown(100 * time.Millisecond)
	<-serveDone
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		return err
	}
	got := make(map[string][]byte)
	if err := kv.Range(nil, nil, func(k, v []byte) bool {
		got[string(k)] = append([]byte(nil), v...)
		return true
	}); err != nil {
		return err
	}
	if len(got) != len(oracle) {
		return fmt.Errorf("demo: restart after kill has %d keys, oracle has %d", len(got), len(oracle))
	}
	for k, want := range oracle {
		if !bytes.Equal(got[k], want) {
			return fmt.Errorf("demo: key %s diverges from the oracle after kill + full recovery", k)
		}
	}
	fmt.Println("demo: state after kill-mid-redo + full recovery is byte-identical to the oracle")

	if firstServe >= fullRedo {
		return fmt.Errorf("demo FAILED: first request served in %v, not faster than full redo %v", firstServe, fullRedo)
	}
	fmt.Printf("demo OK: first request in %v vs full redo %v (%.1fx faster to first service)\n",
		firstServe, fullRedo, float64(fullRedo)/float64(firstServe))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llserve: %v\n", err)
	os.Exit(1)
}
