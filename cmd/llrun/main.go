// Command llrun demonstrates the engine end to end: it drives a mixed
// logical workload against a file-backed database, simulates a crash at a
// chosen point, recovers, verifies, and prints the cost counters.
//
// Usage:
//
//	llrun [-steps N] [-seed S] [-scenario mix] [-wal path] [-physio] [-w] [-vsi]
//	      [-faults token] [-standby] [-ship-batch R]
//	      [-trace-out trace.json] [-flight spill.bin] [-metrics] [-debug-addr host:port]
//	      [-cpuprofile p] [-memprofile p] [-runtime-trace p]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/recovery"
	"logicallog/internal/server"
	"logicallog/internal/ship"
	"logicallog/internal/sim"
	"logicallog/internal/wal"
	"logicallog/internal/workload"
	"logicallog/internal/writegraph"
)

func main() {
	steps := flag.Int("steps", 200, "workload steps before the crash")
	seed := flag.Int64("seed", 1, "workload seed")
	scenario := flag.String("scenario", "", `drive the recoverable domains (B+tree + LSM) with this scenario mix instead of the flat workload: point-lookup-heavy, scan-heavy, write-burst, or a custom "lookup=40,scan=10,insert=30,update=15,delete=5" spec`)
	connect := flag.String("connect", "", "drive the scenario mix against a running llserve at this address instead of a local engine (works mid-recovery: the server redoes what each request needs)")
	walPath := flag.String("wal", "", "WAL file path (default: temp file)")
	physio := flag.Bool("physio", false, "use the physiological baseline configuration")
	classicW := flag.Bool("w", false, "use the classic write graph W instead of rW")
	vsi := flag.Bool("vsi", false, "use the classic vSI REDO test instead of generalized rSIs")
	redoWorkers := flag.Int("redo-workers", 0, "parallel redo worker count (0 = GOMAXPROCS, 1 = serial)")
	logStreams := flag.Int("log-streams", 1, "per-core log append streams (commit fast lane; 1 = classic single lane)")
	absorb := flag.Bool("absorb", false, "absorb superseded hot writes in the volatile log window")
	faults := flag.String("faults", "", `fault plan token, e.g. "wal@17:torn=3+stable@4:eio" (see internal/fault)`)
	standby := flag.Bool("standby", false, "ship the log to a warm standby during the run and promote it after the crash (llship is the full demo)")
	shipBatch := flag.Int("ship-batch", 16, "ship batch size in records (with -standby)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of the recovery pipeline to this path")
	flightOut := flag.String("flight", "", "record decision provenance to this crash-surviving flight spill file (inspect with llinspect -flight)")
	metrics := flag.Bool("metrics", false, "print the unified metrics snapshot (and recovery timeline) after the run")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof, and /metrics on this address")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path at exit")
	runtimeTrace := flag.String("runtime-trace", "", "write a Go runtime execution trace to this path")
	flag.Parse()

	prof, err := obs.StartProfiles(*cpuProfile, *memProfile, *runtimeTrace)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "llrun: profiles: %v\n", err)
		}
	}()

	if *scenario != "" {
		if _, err := workload.ParseMix(*scenario); err != nil {
			fatal(err)
		}
	}

	if *connect != "" {
		mixName := *scenario
		if mixName == "" {
			mixName = "point-lookup-heavy"
		}
		if err := runRemote(*connect, mixName, *seed, *steps); err != nil {
			fatal(err)
		}
		return
	}

	points, err := fault.ParseToken(*faults)
	if err != nil {
		fatal(err)
	}
	plan := fault.NewPlan(points...)

	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
		plan.SetObs(reg)
	}
	if *traceOut != "" || *metrics {
		tracer = obs.NewTracer()
	}

	opts := core.DefaultOptions()
	opts.Physiological = *physio
	opts.RedoWorkers = *redoWorkers
	opts.LogStreams = *logStreams
	opts.AbsorbWrites = *absorb
	opts.Obs = reg
	opts.Tracer = tracer
	if *classicW {
		opts.Policy = writegraph.PolicyW
		opts.Strategy = cache.StrategyShadow // identity breakup needs rW
	}
	if *vsi || *physio {
		opts.RedoTest = recovery.TestVSI
	}
	path := *walPath
	if path == "" {
		path = filepath.Join(os.TempDir(), fmt.Sprintf("llrun-%d.wal", os.Getpid()))
		defer os.Remove(path)
	}
	dev, err := wal.OpenFileDevice(path)
	if err != nil {
		fatal(err)
	}
	defer dev.Close()
	opts.LogDevice = plan.WrapDevice(dev)
	var flightRec *flight.Recorder
	if *flightOut != "" {
		var recovered []flight.Event
		flightRec, recovered, err = flight.OpenSpill(*flightOut, flight.DefaultRingSize)
		if err != nil {
			fatal(err)
		}
		defer flightRec.Close()
		if len(recovered) > 0 {
			fmt.Printf("flight recorder resumed after %d spilled events (torn tail trimmed if any)\n", len(recovered))
		}
		opts.Flight = flightRec
	}
	if *scenario != "" {
		// The shared registry lets a -standby engine resolve the domain
		// transforms before the first shipped record arrives.
		opts.Registry = sim.NewDomainRegistry()
	}

	eng, err := core.New(opts)
	if err != nil {
		fatal(err)
	}
	eng.Store().SetWriteProbe(plan.StableProbe())
	eng.Log().SetMergeProbe(plan.MergeProbe())
	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr, eng.Metrics)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Printf("debug endpoint on http://%s/debug/pprof/ (metrics at /metrics)\n", ln.Addr())
	}
	sc := sim.DefaultScenario(*seed)
	sc.Steps = *steps

	var (
		sb     *ship.Standby
		sender *ship.Sender
	)
	if *standby {
		sopts := opts
		sopts.LogDevice = nil // the standby keeps its own in-memory log
		sb, err = ship.NewStandby(ship.StandbyConfig{Opts: sopts, TruncateOnCheckpoint: sopts.LogInstalls})
		if err != nil {
			fatal(err)
		}
		// The link shares the fault plan, so ship@N tokens hit the wire.
		sender = ship.NewSender(eng.Log(), ship.NewLink(sb, plan), 1, ship.SenderConfig{BatchRecords: *shipBatch, Obs: reg, Tracer: tracer, Flight: flightRec})
		defer sender.Close()
		sc.StepHook = func(int) error { return sender.PumpAll() }
	}

	var driveErr error
	if *scenario != "" {
		fmt.Printf("running %d-step %s scenario over the B+tree and LSM domains (seed %d, policy %v, physiological %v)...\n",
			*steps, *scenario, *seed, opts.Policy, opts.Physiological)
		driveErr = sim.DriveMixWorkload(eng, *scenario, *seed, *steps, sc.StepHook)
	} else {
		fmt.Printf("running %d-step workload (seed %d, policy %v, physiological %v)...\n",
			sc.Steps, sc.Seed, opts.Policy, opts.Physiological)
		driveErr = sim.DriveWorkload(eng, sc)
	}
	if driveErr != nil {
		if !errors.Is(driveErr, fault.ErrInjected) && !wal.IsTransient(driveErr) {
			fatal(driveErr)
		}
		fmt.Printf("workload stopped by injected fault: %v\n", driveErr)
		fmt.Printf("  repro token: %s\n", plan.Token())
	}
	st := eng.Stats()
	fmt.Printf("  log:   %d bytes appended (%d bytes of data values)\n", st.Log.BytesAppended, st.Log.ValueBytes)
	fmt.Printf("  store: %d object writes\n", st.Store.ObjectWrites)
	fmt.Printf("  cache: %d installs, %d identity writes, %d installed-without-flush\n",
		st.Cache.Installs, st.Cache.IdentityWrites, st.Cache.InstalledNotFlushed)

	if sender != nil {
		if err := eng.Log().Force(); err != nil && !errors.Is(err, fault.ErrInjected) && !wal.IsTransient(err) {
			fatal(err)
		}
		if err := sender.Sync(); err != nil {
			fmt.Printf("  standby drain stopped: %v\n", err)
		}
		lagLSN, lagRec := sender.Lag()
		fmt.Printf("  standby: applied %d (lag %d LSNs / %d records, %d resyncs)\n",
			sb.Applied(), lagLSN, lagRec, sender.Resyncs())
	}

	fmt.Printf("crashing (stable LSN %d, losing unforced tail)...\n", eng.Log().StableLSN())
	eng.Crash()
	plan.Heal()

	res, err := eng.Recover()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recovered: scanned %d ops from LSN %d; redone %d, skipped %d installed / %d unexposed, voided %d\n",
		res.ScannedOps, res.RedoStart, res.Redone, res.SkippedInstalled, res.SkippedUnexposed, res.Voided)
	// The durable horizon is what recovery re-derived: an injected torn,
	// flipped, or reordered final append trims the log below the pre-crash
	// acked horizon, and a written-but-unacked tail can raise it.
	horizon := eng.Log().StableLSN()

	if err := sim.VerifyAgainstOracle(eng, horizon); err != nil {
		fatal(fmt.Errorf("verification FAILED: %w", err))
	}
	fmt.Println("verification: recovered state matches the durable-history oracle")
	if *scenario != "" {
		if err := sim.VerifyMixDomains(eng); err != nil {
			fatal(fmt.Errorf("domain verification FAILED: %w", err))
		}
		fmt.Println("domains: recovered B+tree and LSM reopen, pass their invariants, and scan cleanly")
	}

	if sb != nil {
		shipHorizon := sb.Applied()
		promoted, pres, err := sb.Promote()
		if err != nil {
			fatal(fmt.Errorf("standby promotion FAILED: %w", err))
		}
		fmt.Printf("promoted standby: scanned %d ops, redone %d\n", pres.ScannedOps, pres.Redone)
		if err := sim.VerifyHistory(promoted.Registry(), eng.History(), promoted, shipHorizon); err != nil {
			fatal(fmt.Errorf("standby verification FAILED: %w", err))
		}
		fmt.Printf("  standby matches the primary's history through LSN %d\n", shipHorizon)
		if *scenario != "" {
			if err := sim.VerifyMixDomains(promoted); err != nil {
				fatal(fmt.Errorf("standby domain verification FAILED: %w", err))
			}
			fmt.Println("  standby domains: B+tree and LSM reopen, pass their invariants, and scan cleanly")
		}
		if shipHorizon > horizon {
			fmt.Printf("  note: the standby preserved %d LSNs the crashed primary's log lost (shipped before the fault trimmed the tail)\n",
				shipHorizon-horizon)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recovery trace written to %s (load in chrome://tracing or Perfetto, or llinspect -timeline)\n", *traceOut)
	}
	if *metrics {
		fmt.Println("-- metrics")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(eng.Metrics()); err != nil {
			fatal(err)
		}
		obs.RenderTimeline(os.Stdout, tracer.Events())
	}
	if flightRec != nil {
		if err := flightRec.Sync(); err != nil {
			fatal(err)
		}
		fmt.Printf("flight spill left at %s (explain a decision: llinspect -flight %s -explain LSN %s)\n", *flightOut, *flightOut, path)
	}
	fmt.Printf("WAL left at %s (inspect with llinspect)\n", path)
}

// runRemote drives a scenario mix over the wire against a running llserve:
// adopt the server's current contents into the model, run the mix with
// per-step cross-checks, then verify the full state.  It works against a
// server still draining recovery — every request redoes exactly the
// dependency chains it needs before being served.
func runRemote(addr, mixName string, seed int64, steps int) error {
	mix, err := workload.ParseMix(mixName)
	if err != nil {
		return err
	}
	cl, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		return err
	}
	drv, err := workload.NewMixDriver(mix, seed)
	if err != nil {
		return err
	}
	if err := drv.Adopt(cl); err != nil {
		return err
	}
	fmt.Printf("driving %d-step %s mix against %s (seed %d, adopted %d existing keys)...\n",
		steps, mixName, addr, seed, drv.ModelSize())
	if err := drv.Steps(cl, steps); err != nil {
		return err
	}
	if err := drv.Verify(cl); err != nil {
		return fmt.Errorf("remote verification FAILED: %w", err)
	}
	c := drv.Counts()
	fmt.Printf("  ops: %d lookups, %d scans, %d inserts, %d updates, %d deletes (%d keys live)\n",
		c.Lookups, c.Scans, c.Inserts, c.Updates, c.Deletes, drv.ModelSize())
	stats, err := cl.Stats()
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("  server stats:")
	for _, k := range keys {
		fmt.Printf("    %-18s %d\n", k, stats[k])
	}
	fmt.Println("verification: server state matches the driver's model")
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llrun: %v\n", err)
	os.Exit(1)
}
