// Command llrun demonstrates the engine end to end: it drives a mixed
// logical workload against a file-backed database, simulates a crash at a
// chosen point, recovers, verifies, and prints the cost counters.
//
// Usage:
//
//	llrun [-steps N] [-seed S] [-wal path] [-physio] [-w] [-vsi] [-faults token]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/recovery"
	"logicallog/internal/sim"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

func main() {
	steps := flag.Int("steps", 200, "workload steps before the crash")
	seed := flag.Int64("seed", 1, "workload seed")
	walPath := flag.String("wal", "", "WAL file path (default: temp file)")
	physio := flag.Bool("physio", false, "use the physiological baseline configuration")
	classicW := flag.Bool("w", false, "use the classic write graph W instead of rW")
	vsi := flag.Bool("vsi", false, "use the classic vSI REDO test instead of generalized rSIs")
	redoWorkers := flag.Int("redo-workers", 0, "parallel redo worker count (0 = GOMAXPROCS, 1 = serial)")
	faults := flag.String("faults", "", `fault plan token, e.g. "wal@17:torn=3+stable@4:eio" (see internal/fault)`)
	flag.Parse()

	points, err := fault.ParseToken(*faults)
	if err != nil {
		fatal(err)
	}
	plan := fault.NewPlan(points...)

	opts := core.DefaultOptions()
	opts.Physiological = *physio
	opts.RedoWorkers = *redoWorkers
	if *classicW {
		opts.Policy = writegraph.PolicyW
		opts.Strategy = cache.StrategyShadow // identity breakup needs rW
	}
	if *vsi || *physio {
		opts.RedoTest = recovery.TestVSI
	}
	path := *walPath
	if path == "" {
		path = filepath.Join(os.TempDir(), fmt.Sprintf("llrun-%d.wal", os.Getpid()))
		defer os.Remove(path)
	}
	dev, err := wal.OpenFileDevice(path)
	if err != nil {
		fatal(err)
	}
	defer dev.Close()
	opts.LogDevice = plan.WrapDevice(dev)

	eng, err := core.New(opts)
	if err != nil {
		fatal(err)
	}
	eng.Store().SetWriteProbe(plan.StableProbe())
	sc := sim.DefaultScenario(*seed)
	sc.Steps = *steps

	fmt.Printf("running %d-step workload (seed %d, policy %v, physiological %v)...\n",
		sc.Steps, sc.Seed, opts.Policy, opts.Physiological)
	if err := sim.DriveWorkload(eng, sc); err != nil {
		if !errors.Is(err, fault.ErrInjected) && !wal.IsTransient(err) {
			fatal(err)
		}
		fmt.Printf("workload stopped by injected fault: %v\n", err)
		fmt.Printf("  repro token: %s\n", plan.Token())
	}
	st := eng.Stats()
	fmt.Printf("  log:   %d bytes appended (%d bytes of data values)\n", st.Log.BytesAppended, st.Log.ValueBytes)
	fmt.Printf("  store: %d object writes\n", st.Store.ObjectWrites)
	fmt.Printf("  cache: %d installs, %d identity writes, %d installed-without-flush\n",
		st.Cache.Installs, st.Cache.IdentityWrites, st.Cache.InstalledNotFlushed)

	fmt.Printf("crashing (stable LSN %d, losing unforced tail)...\n", eng.Log().StableLSN())
	eng.Crash()
	plan.Heal()

	res, err := eng.Recover()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recovered: scanned %d ops from LSN %d; redone %d, skipped %d installed / %d unexposed, voided %d\n",
		res.ScannedOps, res.RedoStart, res.Redone, res.SkippedInstalled, res.SkippedUnexposed, res.Voided)
	// The durable horizon is what recovery re-derived: an injected torn,
	// flipped, or reordered final append trims the log below the pre-crash
	// acked horizon, and a written-but-unacked tail can raise it.
	horizon := eng.Log().StableLSN()

	if err := sim.VerifyAgainstOracle(eng, horizon); err != nil {
		fatal(fmt.Errorf("verification FAILED: %w", err))
	}
	fmt.Println("verification: recovered state matches the durable-history oracle")
	fmt.Printf("WAL left at %s (inspect with llinspect)\n", path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llrun: %v\n", err)
	os.Exit(1)
}
