// Command llinspect dumps a file-backed write-ahead log produced by
// logicallog (Options.LogPath) in human-readable form: one line per record,
// with operation read/write sets, install/flush bookkeeping, and checkpoint
// contents.
//
// With -timeline it instead renders the phase timeline of a recovery trace
// produced by llrun -trace-out (Chrome trace_event JSON).
//
// With -flight it also loads a flight-recorder spill file (llrun -flight):
// record lines gain provenance annotations (canceled absorptions), -explain
// reconstructs the full decision chain for one LSN, and -forensics renders
// the post-crash forensic timeline (flight decisions merged with the trace).
//
// Usage:
//
//	llinspect [-from LSN] [-flight spill.bin] path/to/db.wal
//	llinspect -explain LSN [-flight spill.bin] path/to/db.wal
//	llinspect -timeline trace.json
//	llinspect -forensics -flight spill.bin [-timeline trace.json]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"logicallog/internal/forensics"
	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/wal"
)

func main() {
	from := flag.Uint64("from", 0, "first LSN to print")
	timeline := flag.String("timeline", "", "render the recovery timeline of a Chrome trace_event JSON file (from llrun -trace-out)")
	flightPath := flag.String("flight", "", "flight-recorder spill file (from llrun -flight); enables provenance annotations")
	explain := flag.Uint64("explain", 0, "explain the redo decision for this LSN instead of dumping the log")
	renderForensics := flag.Bool("forensics", false, "render the forensic timeline from -flight (merged with -timeline when given)")
	flag.Parse()

	var events []flight.Event
	if *flightPath != "" {
		var err error
		events, err = flight.ReadSpill(*flightPath)
		if err != nil {
			fatal(err)
		}
	}

	if *renderForensics {
		if *flightPath == "" {
			fmt.Fprintln(os.Stderr, "llinspect: -forensics requires -flight")
			os.Exit(2)
		}
		var trace []obs.Event
		if *timeline != "" {
			var err error
			trace, err = readTrace(*timeline)
			if err != nil {
				fatal(err)
			}
		}
		obs.RenderTimeline(os.Stdout, forensics.MergeTimeline(events, trace))
		fmt.Print(forensics.Dump(events, 40))
		return
	}
	if *timeline != "" {
		trace, err := readTrace(*timeline)
		if err != nil {
			fatal(err)
		}
		obs.RenderTimeline(os.Stdout, trace)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: llinspect [-from LSN] [-explain LSN] [-flight spill] <wal file> | llinspect -timeline <trace.json> | llinspect -forensics -flight <spill>")
		os.Exit(2)
	}
	dev, err := wal.OpenFileDevice(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer dev.Close()
	log, err := wal.New(dev)
	if err != nil {
		fatal(err)
	}

	if *explain != 0 {
		recs, err := forensics.ScanAll(log, log.FirstLSN())
		if err != nil {
			fatal(err)
		}
		x, err := forensics.Explain(recs, events, op.SI(*explain))
		if err != nil {
			fatal(err)
		}
		fmt.Print(x)
		return
	}

	sc, err := log.Scan(op.SI(*from))
	if err != nil {
		fatal(err)
	}
	canceled := canceledAbsorptions(events)
	count := 0
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fatal(err)
		}
		printRecord(rec, canceled)
		count++
	}
	fmt.Printf("-- %d records (stable LSN %d, first LSN %d)\n", count, log.StableLSN(), log.FirstLSN())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llinspect: %v\n", err)
	os.Exit(1)
}

// readTrace loads a Chrome trace_event file.
func readTrace(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadChromeTrace(f)
}

// canceledAbsorptions collects, per LSN, the observer horizon that canceled
// a pending absorption of that record.  A canceled absorption leaves the
// record in the log as a normal operation — indistinguishable from one that
// was never an elision candidate — so the annotation is the only place the
// near-miss shows up.
func canceledAbsorptions(events []flight.Event) map[op.SI]op.SI {
	var m map[op.SI]op.SI
	for _, ev := range events {
		if ev.Kind != flight.KindAbsorbCancel {
			continue
		}
		if m == nil {
			m = make(map[op.SI]op.SI)
		}
		m[ev.LSN] = ev.Ref
	}
	return m
}

func printRecord(rec *wal.Record, canceled map[op.SI]op.SI) {
	switch rec.Type {
	case wal.RecOperation:
		o := rec.Op
		extra := ""
		if len(o.Values) > 0 {
			var sizes []string
			for _, x := range o.WriteSet {
				if v, ok := o.Values[x]; ok {
					sizes = append(sizes, fmt.Sprintf("%s=%dB", x, len(v)))
				}
			}
			extra = " values{" + strings.Join(sizes, " ") + "}"
		}
		if observer, ok := canceled[rec.LSN]; ok {
			extra += fmt.Sprintf(" [absorb-canceled: observer at LSN %d]", observer)
		}
		fmt.Printf("%8d  op     %s%s\n", rec.LSN, o, extra)
	case wal.RecInstall:
		fmt.Printf("%8d  install flushed=%s unflushed=%s ops=%v\n",
			rec.LSN, rsis(rec.Install.Flushed), rsis(rec.Install.Unflushed), rec.Install.Ops)
	case wal.RecFlush:
		fmt.Printf("%8d  flush  %s vSI=%d\n", rec.LSN, rec.Flush.Object, rec.Flush.VSI)
	case wal.RecAbsorbed:
		fmt.Printf("%8d  absorb %s by=%d elided=%dB\n", rec.LSN, rec.Absorbed.Object, rec.Absorbed.By, rec.Absorbed.Elided)
	case wal.RecCheckpoint:
		var parts []string
		for _, d := range rec.Checkpoint.Dirty {
			parts = append(parts, fmt.Sprintf("%s@%d", d.ID, d.RSI))
		}
		fmt.Printf("%8d  ckpt   dirty{%s}\n", rec.LSN, strings.Join(parts, " "))
	default:
		fmt.Printf("%8d  ?      type=%v\n", rec.LSN, rec.Type)
	}
}

func rsis(s []wal.ObjectRSI) string {
	var parts []string
	for _, r := range s {
		parts = append(parts, fmt.Sprintf("%s@%d", r.ID, r.RSI))
	}
	return "{" + strings.Join(parts, " ") + "}"
}
