// Command llinspect dumps a file-backed write-ahead log produced by
// logicallog (Options.LogPath) in human-readable form: one line per record,
// with operation read/write sets, install/flush bookkeeping, and checkpoint
// contents.
//
// With -timeline it instead renders the phase timeline of a recovery trace
// produced by llrun -trace-out (Chrome trace_event JSON).
//
// Usage:
//
//	llinspect [-from LSN] path/to/db.wal
//	llinspect -timeline trace.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"logicallog/internal/obs"
	"logicallog/internal/op"
	"logicallog/internal/wal"
)

func main() {
	from := flag.Uint64("from", 0, "first LSN to print")
	timeline := flag.String("timeline", "", "render the recovery timeline of a Chrome trace_event JSON file (from llrun -trace-out)")
	flag.Parse()
	if *timeline != "" {
		if err := renderTimeline(*timeline); err != nil {
			fmt.Fprintf(os.Stderr, "llinspect: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: llinspect [-from LSN] <wal file> | llinspect -timeline <trace.json>")
		os.Exit(2)
	}
	dev, err := wal.OpenFileDevice(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "llinspect: %v\n", err)
		os.Exit(1)
	}
	defer dev.Close()
	log, err := wal.New(dev)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llinspect: %v\n", err)
		os.Exit(1)
	}
	sc, err := log.Scan(op.SI(*from))
	if err != nil {
		fmt.Fprintf(os.Stderr, "llinspect: %v\n", err)
		os.Exit(1)
	}
	count := 0
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "llinspect: %v\n", err)
			os.Exit(1)
		}
		printRecord(rec)
		count++
	}
	fmt.Printf("-- %d records (stable LSN %d, first LSN %d)\n", count, log.StableLSN(), log.FirstLSN())
}

// renderTimeline loads a Chrome trace_event file and prints the text phase
// timeline (per-lane spans with proportional bars, then phase totals).
func renderTimeline(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	obs.RenderTimeline(os.Stdout, events)
	return nil
}

func printRecord(rec *wal.Record) {
	switch rec.Type {
	case wal.RecOperation:
		o := rec.Op
		extra := ""
		if len(o.Values) > 0 {
			var sizes []string
			for _, x := range o.WriteSet {
				if v, ok := o.Values[x]; ok {
					sizes = append(sizes, fmt.Sprintf("%s=%dB", x, len(v)))
				}
			}
			extra = " values{" + strings.Join(sizes, " ") + "}"
		}
		fmt.Printf("%8d  op     %s%s\n", rec.LSN, o, extra)
	case wal.RecInstall:
		fmt.Printf("%8d  install flushed=%s unflushed=%s ops=%v\n",
			rec.LSN, rsis(rec.Install.Flushed), rsis(rec.Install.Unflushed), rec.Install.Ops)
	case wal.RecFlush:
		fmt.Printf("%8d  flush  %s vSI=%d\n", rec.LSN, rec.Flush.Object, rec.Flush.VSI)
	case wal.RecAbsorbed:
		fmt.Printf("%8d  absorb %s elided=%dB\n", rec.LSN, rec.Absorbed.Object, rec.Absorbed.Elided)
	case wal.RecCheckpoint:
		var parts []string
		for _, d := range rec.Checkpoint.Dirty {
			parts = append(parts, fmt.Sprintf("%s@%d", d.ID, d.RSI))
		}
		fmt.Printf("%8d  ckpt   dirty{%s}\n", rec.LSN, strings.Join(parts, " "))
	default:
		fmt.Printf("%8d  ?      type=%v\n", rec.LSN, rec.Type)
	}
}

func rsis(s []wal.ObjectRSI) string {
	var parts []string
	for _, r := range s {
		parts = append(parts, fmt.Sprintf("%s@%d", r.ID, r.RSI))
	}
	return "{" + strings.Join(parts, " ") + "}"
}
