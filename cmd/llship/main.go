// Command llship demonstrates the replication subsystem end to end: a
// primary runs a mixed logical workload while a sender continuously ships
// its log to a warm standby; mid-run a second standby is bootstrapped from
// a fuzzy backup and catches up from the backup's StartLSN; the wire can be
// fault-injected; finally the primary crashes and both standbys are
// promoted and verified against the primary's execution history.
//
// Usage:
//
//	llship [-steps N] [-seed S] [-batch R] [-bootstrap-at STEP]
//	       [-faults token] [-vsi] [-metrics]
//
// Example fault tokens (see internal/fault): "ship@4:drop",
// "ship@2:dup+ship@9:reorder=0", "ship@7:eio".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"logicallog/internal/backup"
	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/obs"
	"logicallog/internal/recovery"
	"logicallog/internal/ship"
	"logicallog/internal/sim"
)

func main() {
	steps := flag.Int("steps", 300, "workload steps before the primary crash")
	seed := flag.Int64("seed", 1, "workload seed")
	batch := flag.Int("batch", 16, "ship batch size in records")
	bootstrapAt := flag.Int("bootstrap-at", 150, "step at which the second standby bootstraps from a fuzzy backup (0 = never)")
	faults := flag.String("faults", "", `ship fault plan token, e.g. "ship@4:drop+ship@9:reorder=0"`)
	vsi := flag.Bool("vsi", false, "use the classic vSI REDO test instead of generalized rSIs")
	metrics := flag.Bool("metrics", false, "print the promoted standby's metrics snapshot and span timeline")
	flag.Parse()

	points, err := fault.ParseToken(*faults)
	if err != nil {
		fatal(err)
	}
	plan := fault.NewPlan(points...)

	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if *metrics {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer()
	}

	opts := core.DefaultOptions()
	opts.Obs = reg
	opts.Tracer = tracer
	if *vsi {
		opts.RedoTest = recovery.TestVSI
	}
	eng, err := core.New(opts)
	if err != nil {
		fatal(err)
	}

	// Warm standby from the very first record; its link carries the fault
	// plan.
	sbA, err := ship.NewStandby(ship.StandbyConfig{Opts: opts, TruncateOnCheckpoint: opts.LogInstalls})
	if err != nil {
		fatal(err)
	}
	linkA := ship.NewLink(sbA, plan)
	sendA := ship.NewSender(eng.Log(), linkA, 1, ship.SenderConfig{BatchRecords: *batch, Obs: reg, Tracer: tracer})
	defer sendA.Close()

	var (
		sbB   *ship.Standby
		sendB *ship.Sender
	)
	sc := sim.DefaultScenario(*seed)
	sc.Steps = *steps
	sc.StepHook = func(step int) error {
		if err := sendA.PumpAll(); err != nil {
			return err
		}
		if sendB != nil {
			if err := sendB.PumpAll(); err != nil {
				return err
			}
		}
		if *bootstrapAt > 0 && step == *bootstrapAt {
			// Fuzzy backup while the workload keeps running, then a second
			// standby whose replay starts at the backup's horizon.
			b, err := backup.Take(eng, nil)
			if err != nil {
				return err
			}
			sbB, err = ship.Bootstrap(ship.StandbyConfig{Opts: opts, TruncateOnCheckpoint: opts.LogInstalls}, b)
			if err != nil {
				return err
			}
			sendB = ship.NewSender(eng.Log(), ship.NewLink(sbB, nil), b.StartLSN, ship.SenderConfig{BatchRecords: *batch, Obs: reg, Tracer: tracer})
			fmt.Printf("step %d: standby B bootstrapped from fuzzy backup (%d objects, replay from LSN %d)\n",
				step, len(b.Objects), b.StartLSN)
		}
		return nil
	}

	fmt.Printf("running %d-step workload (seed %d), shipping %d-record batches...\n", sc.Steps, sc.Seed, *batch)
	if err := sim.DriveWorkload(eng, sc); err != nil {
		fatal(err)
	}
	if sendB != nil {
		defer sendB.Close()
	}
	if err := eng.Log().Force(); err != nil {
		fatal(err)
	}
	for _, s := range senders(sendA, sendB) {
		if err := s.Sync(); err != nil {
			fatal(err)
		}
	}
	lagLSN, lagRec := sendA.Lag()
	fmt.Printf("primary durable LSN %d; standby A applied %d (lag %d LSNs / %d records, %d resyncs)\n",
		eng.Log().StableLSN(), sbA.Applied(), lagLSN, lagRec, sendA.Resyncs())
	if fired := plan.Fired(); len(fired) > 0 {
		fmt.Printf("  wire faults fired: %d (repro token: %s)\n", len(fired), plan.Token())
	}
	stA := sbA.Stats()
	fmt.Printf("  standby A: %d batches, %d applied, %d dups, %d gaps, %d installs mirrored\n",
		stA.Batches, stA.Applied, stA.Dups, stA.Gaps, stA.Installs)
	if sbB != nil {
		fmt.Printf("  standby B: applied %d (bootstrapped mid-run)\n", sbB.Applied())
	}

	hist := eng.History()
	fmt.Printf("crashing the primary...\n")
	eng.Crash()

	for _, cand := range []struct {
		name string
		sb   *ship.Standby
	}{{"A", sbA}, {"B", sbB}} {
		name, sb := cand.name, cand.sb
		if sb == nil {
			continue
		}
		horizon := sb.Applied()
		start := time.Now()
		promoted, res, err := sb.Promote()
		if err != nil {
			fatal(fmt.Errorf("promote %s: %w", name, err))
		}
		fmt.Printf("promoted standby %s in %s: scanned %d ops, redone %d, skipped %d installed / %d unexposed\n",
			name, time.Since(start).Round(time.Microsecond), res.ScannedOps, res.Redone,
			res.SkippedInstalled, res.SkippedUnexposed)
		if err := sim.VerifyHistory(promoted.Registry(), hist, promoted, horizon); err != nil {
			fatal(fmt.Errorf("standby %s verification FAILED: %w", name, err))
		}
		fmt.Printf("  verification: %s matches the primary's durable history through LSN %d\n", name, horizon)
		if *metrics && name == "A" {
			fmt.Println("-- metrics (standby A)")
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(promoted.Metrics()); err != nil {
				fatal(err)
			}
			obs.RenderTimeline(os.Stdout, tracer.Events())
		}
	}
}

func senders(a, b *ship.Sender) []*ship.Sender {
	out := []*ship.Sender{a}
	if b != nil {
		out = append(out, b)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llship: %v\n", err)
	os.Exit(1)
}
