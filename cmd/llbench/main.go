// Command llbench runs the paper-reproduction experiments (E1–E10 and the
// ablations; see DESIGN.md) and prints their tables.
//
// Usage:
//
//	llbench              # run everything
//	llbench -exp e1,e5   # run a subset
//	llbench -list        # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"logicallog/internal/harness"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	exps := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	redoWorkers := flag.Int("redo-workers", 0, "parallel redo worker count for recovery-heavy experiments (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()
	harness.DefaultRedoWorkers = *redoWorkers

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	var selected []harness.Experiment
	if *exps == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e, ok := harness.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "llbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("== %s: %s\n", e.ID, e.Name)
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "llbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		tbl.Render(os.Stdout)
	}
}
