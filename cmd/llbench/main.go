// Command llbench runs the paper-reproduction experiments (E1–E14 and the
// ablations; see DESIGN.md) and prints their tables.
//
// Usage:
//
//	llbench                        # run everything
//	llbench -exp e1,e5             # run a subset
//	llbench -list                  # list experiments
//	llbench -json out.json         # also write the llbench/v1 JSON report
//	llbench -validate-json f.json  # validate a report file and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"logicallog/internal/harness"
	"logicallog/internal/obs"
	"logicallog/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	exps := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	redoWorkers := flag.Int("redo-workers", 0, "parallel redo worker count for recovery-heavy experiments (0 = GOMAXPROCS, 1 = serial)")
	logStreams := flag.Int("log-streams", 0, "per-core log append streams for every harness engine (0 = experiment default)")
	absorb := flag.Bool("absorb", false, "absorb superseded hot writes in the volatile log window on every harness engine")
	mixes := flag.String("mix", "", "comma-separated scenario mixes for the domain experiment E13 (default: all built-ins)")
	jsonOut := flag.String("json", "", `write the machine-readable llbench/v1 report to this path ("-" = stdout)`)
	validateJSON := flag.String("validate-json", "", "validate a previously written report file and exit")
	metrics := flag.Bool("metrics", false, "print each experiment's metrics snapshot after its table")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof, and /metrics on this address")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path at exit")
	runtimeTrace := flag.String("runtime-trace", "", "write a Go runtime execution trace to this path")
	flag.Parse()
	harness.DefaultRedoWorkers = *redoWorkers
	harness.DefaultLogStreams = *logStreams
	harness.DefaultAbsorbWrites = *absorb
	if *mixes != "" {
		for _, name := range strings.Split(*mixes, ",") {
			name = strings.TrimSpace(name)
			if _, err := workload.ParseMix(name); err != nil {
				fmt.Fprintf(os.Stderr, "llbench: %v\n", err)
				os.Exit(2)
			}
			harness.DefaultMixes = append(harness.DefaultMixes, name)
		}
	}

	if *validateJSON != "" {
		f, err := os.Open(*validateJSON)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rep, err := harness.ReadReport(f)
		if err != nil {
			fatal(err)
		}
		if err := harness.ValidateReport(rep); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid %s report (%d experiments)\n", *validateJSON, rep.Schema, len(rep.Experiments))
		return
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	prof, err := obs.StartProfiles(*cpuProfile, *memProfile, *runtimeTrace)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "llbench: profiles: %v\n", err)
		}
	}()

	// The report and metrics paths need a registry on every harness engine.
	if *jsonOut != "" || *metrics || *debugAddr != "" {
		harness.DefaultObs = obs.NewRegistry()
	}
	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr, harness.DefaultObs.Snapshot)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Printf("debug endpoint on http://%s/debug/pprof/ (metrics at /metrics)\n", ln.Addr())
	}

	var selected []harness.Experiment
	if *exps == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e, ok := harness.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "llbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *jsonOut != "" {
		runReport(selected, *jsonOut, *metrics)
		return
	}

	for _, e := range selected {
		fmt.Printf("== %s: %s\n", e.ID, e.Name)
		harness.DefaultObs.Reset()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "llbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		tbl.Render(os.Stdout)
		if *metrics {
			printSnapshot(harness.DefaultObs.Snapshot())
		}
	}
}

// runReport runs the experiments through the report collector, renders the
// tables as usual, and writes the JSON artifact.
func runReport(selected []harness.Experiment, path string, metrics bool) {
	rep, err := harness.RunReport(selected)
	if err != nil {
		fatal(err)
	}
	for _, er := range rep.Experiments {
		fmt.Printf("== %s: %s (%.1f ms)\n", er.ID, er.Name, er.WallMS)
		tbl := harness.Table{
			ID: er.ID, Title: er.Table.Title, Paper: er.Table.Paper,
			Columns: er.Table.Columns, Rows: er.Table.Rows, Notes: er.Table.Notes,
		}
		tbl.Render(os.Stdout)
		if metrics {
			printSnapshot(er.Metrics)
		}
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		fatal(err)
	}
	if path != "-" {
		fmt.Printf("report written to %s (%d experiments)\n", path, len(rep.Experiments))
	}
}

func printSnapshot(s obs.Snapshot) {
	fmt.Println("  -- metrics")
	for _, name := range sortedKeys(s.Counters) {
		fmt.Printf("  %-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Printf("  %-40s %d (gauge)\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Printf("  %-40s n=%d min=%d max=%d mean=%.1f\n", name, h.Count, h.Min, h.Max, h.Mean())
	}
	fmt.Println()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llbench: %v\n", err)
	os.Exit(1)
}
