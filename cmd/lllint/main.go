// Command lllint is the logical-logging lint driver: a multichecker hosting
// the analyzers in internal/lint, which mechanically enforce the
// recovery-critical invariants documented in DESIGN.md (deterministic redo
// replay, the engine/cache/stable/wal lock order, the force-error
// discipline, atomic-access consistency, log-record immutability, and the
// obs span discipline — every Lane.Begin span must be endable).
//
// Usage:
//
//	go run ./cmd/lllint [-list] [-only name[,name]] [packages]
//
// With no packages it lints ./...; any finding makes it exit 1.  Intentional
// findings are silenced in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"logicallog/internal/lint"
)

func main() {
	var (
		list = flag.Bool("list", false, "print the analyzer suite and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lllint [-list] [-only name[,name]] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "lllint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lllint:", err)
		os.Exit(2)
	}
	diags, err := lint.Lint(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lllint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lllint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
