// Command lllint is the logical-logging lint driver: a multichecker hosting
// the analyzers in internal/lint, which mechanically enforce the
// recovery-critical invariants documented in DESIGN.md (deterministic redo
// replay, the engine/cache/stable/wal lock order, the force-error
// discipline, atomic-access consistency, log-record immutability, the obs
// span discipline, and the whole-program protocol checks: write-ahead
// ordering, arena/record escape, and critical-section closure).
//
// Usage:
//
//	go run ./cmd/lllint [-list] [-only name[,name]] [-json] [-summary-cache file] [packages]
//
// With no packages it lints ./...; any finding makes it exit 1.  -json
// emits machine-readable findings (file/line/col/analyzer/message), one
// array on stdout.  -summary-cache persists the interprocedural function
// summaries keyed on a hash of sources and dependency export data, so
// repeated runs over an unchanged tree skip the fixed-point resolution.
// Intentional findings are silenced in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"logicallog/internal/lint"
)

// jsonDiagnostic is the machine-readable finding shape (-json); the CI
// problem matcher (.github/lllint-problem-matcher.json) consumes the plain
// text form instead.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		list     = flag.Bool("list", false, "print the analyzer suite and exit")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array instead of text")
		sumCache = flag.String("summary-cache", "", "file caching interprocedural summaries between runs")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: lllint [-list] [-only name[,name]] [-json] [-summary-cache file] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "lllint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lllint:", err)
		os.Exit(2)
	}

	prog := lint.BuildProgram(pkgs)
	cacheKey, cacheHit := "", false
	if *sumCache != "" {
		cacheKey, err = lint.CacheKey(pkgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lllint: summary cache disabled:", err)
		} else if sums, ok := lint.LoadSummaryCache(*sumCache, cacheKey); ok {
			cacheHit = prog.InstallSummaries(sums)
		}
	}

	diags, err := lint.LintWithProgram(pkgs, analyzers, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lllint:", err)
		os.Exit(2)
	}

	if *sumCache != "" && cacheKey != "" && !cacheHit {
		if err := lint.SaveSummaryCache(*sumCache, cacheKey, prog.Summaries()); err != nil {
			fmt.Fprintln(os.Stderr, "lllint: writing summary cache:", err)
		}
	}

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "lllint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lllint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
