// Application-recovery example: the paper's Section 1 application scenario —
// an application whose state is recoverable, whose reads R(A,X), execution
// steps Ex(A), and logical writes W_L(A,X) are logged without ever logging
// the data moved, and which survives a crash mid-run.
package main

import (
	"fmt"
	"log"

	"logicallog"
	"logicallog/internal/apprec"
	"logicallog/internal/op"
)

func main() {
	db, err := logicallog.Open(logicallog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	eng := db.Engine()
	apprec.Register(eng.Registry())

	// A 64 KiB input the application will consume.
	input := make([]byte, 64<<10)
	for i := range input {
		input[i] = byte(i * 31)
	}
	must(db.Create("dataset", input))

	app, err := apprec.Launch(eng, "worker-1")
	must(err)

	// Three rounds of read -> execute -> write.  Each round logs three
	// records totalling ~100 bytes, although 64 KiB flows through each.
	for round := 0; round < 3; round++ {
		must(app.Read("dataset"))
		must(app.Step([]byte{byte(round)}))
		must(app.Write(op.ObjectID(fmt.Sprintf("result-%d", round))))
	}
	st := db.Stats()
	fmt.Printf("3 application rounds over a 64 KiB input: %d log bytes, %d of them data values\n",
		st.LogBytesAppended, st.LogValueBytes)
	fmt.Println("(the 64 KiB dataset create accounts for the data values; the rounds logged none)")

	wantState, err := app.State()
	must(err)

	// Crash mid-life and recover.  The application state object — input
	// buffer, accumulator, output buffer, step counter — is rebuilt by
	// replaying the logical log.
	must(db.Sync())
	db.Crash()
	rep, err := db.Recover()
	must(err)
	fmt.Printf("recovered: %d ops replayed, %d skipped as installed/unexposed\n",
		rep.Redone, rep.SkippedInstalled+rep.SkippedUnexposed)

	app2 := apprec.Attach(eng, "worker-1")
	gotState, err := app2.State()
	must(err)
	if !gotState.Equal(wantState) {
		log.Fatalf("application state diverged after recovery")
	}
	fmt.Printf("application state intact: %d steps executed, %d-byte output buffer\n",
		gotState.Steps, len(gotState.Output))

	// The application finishes and exits; its state object is deleted.
	// Once installed, none of its operations will ever be re-executed —
	// the generalized-rSI REDO test treats them as installed (Section 5).
	must(app2.Exit())
	must(db.Flush())
	must(db.Sync()) // make the (lazy) installation records durable too
	db.Crash()
	rep, err = db.Recover()
	must(err)
	fmt.Printf("after exit + flush + crash: %d ops replayed (terminated application bypassed)\n", rep.Redone)

	if _, err := eng.Get(op.ObjectID("worker-1")); err == nil {
		log.Fatal("exited application state resurrected")
	}
	fmt.Println("done")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
