// B-tree example: the paper's Section 1 database scenario — a recoverable
// B-tree whose page splits are single logical operations (pages named, never
// logged), bulk-loaded, crashed mid-load, recovered, and verified.
package main

import (
	"fmt"
	"log"

	"logicallog"
	"logicallog/internal/btree"
)

func main() {
	db, err := logicallog.Open(logicallog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	eng := db.Engine()
	btree.Register(eng.Registry())

	tree, err := btree.New(eng, "accounts", 16)
	must(err)

	// Bulk-load 1000 records with 512-byte payloads, flushing and
	// checkpointing along the way as a real system would.
	val := make([]byte, 512)
	const n = 1000
	for i := 0; i < n; i++ {
		must(tree.Insert(key(i), val))
		if i%100 == 99 {
			must(db.FlushOne())
		}
		if i%250 == 249 {
			must(db.Checkpoint())
		}
	}
	st, err := tree.Stats()
	must(err)
	dbStats := db.Stats()
	fmt.Printf("loaded %d keys: height %d, %d pages (%d leaves)\n",
		st.Keys, st.Height, st.Pages, st.LeafPages)
	fmt.Printf("log: %d bytes appended; %d bytes were data values\n",
		dbStats.LogBytesAppended, dbStats.LogValueBytes)
	fmt.Printf("(every page split was one logical record of ~100 bytes — %d pages of contents were moved without logging them)\n",
		st.Pages-1)

	// Crash mid-flight and recover.
	must(db.Sync())
	db.Crash()
	rep, err := db.Recover()
	must(err)
	fmt.Printf("recovered: scanned %d ops, redone %d, skipped %d\n",
		rep.OpsScanned, rep.Redone, rep.SkippedInstalled+rep.SkippedUnexposed)

	tree2, err := btree.Open(eng, "accounts")
	must(err)
	must(tree2.Check())
	for i := 0; i < n; i++ {
		_, found, err := tree2.Get(key(i))
		must(err)
		if !found {
			log.Fatalf("key %d lost in recovery", i)
		}
	}
	fmt.Println("tree verified: structure valid, all keys present")

	// Point operations keep working after recovery.
	must(tree2.Insert([]byte("zzz-last"), []byte("after recovery")))
	v, found, err := tree2.Get([]byte("zzz-last"))
	must(err)
	fmt.Printf("post-recovery insert: found=%v value=%q\n", found, v)
}

func key(i int) []byte { return []byte(fmt.Sprintf("acct-%06d", i)) }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
