// B-tree example: the paper's Section 1 database scenario — a recoverable
// B-tree whose page splits are single logical operations (pages named, never
// logged), bulk-loaded, crashed mid-load, recovered, and verified.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"logicallog"
	"logicallog/internal/btree"
)

func run(w io.Writer) error {
	db, err := logicallog.Open(logicallog.DefaultOptions())
	if err != nil {
		return err
	}
	defer db.Close()
	eng := db.Engine()
	btree.Register(eng.Registry())

	tree, err := btree.New(eng, "accounts", 16)
	if err != nil {
		return err
	}

	// Bulk-load 1000 records with 512-byte payloads, flushing and
	// checkpointing along the way as a real system would.
	val := make([]byte, 512)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tree.Insert(key(i), val); err != nil {
			return err
		}
		if i%100 == 99 {
			if err := db.FlushOne(); err != nil {
				return err
			}
		}
		if i%250 == 249 {
			if err := db.Checkpoint(); err != nil {
				return err
			}
		}
	}
	st, err := tree.Stats()
	if err != nil {
		return err
	}
	dbStats := db.Stats()
	fmt.Fprintf(w, "loaded %d keys: height %d, %d pages (%d leaves)\n",
		st.Keys, st.Height, st.Pages, st.LeafPages)
	fmt.Fprintf(w, "log: %d bytes appended; %d bytes were data values\n",
		dbStats.LogBytesAppended, dbStats.LogValueBytes)
	fmt.Fprintf(w, "(every page split was one logical record of ~100 bytes — %d pages of contents were moved without logging them)\n",
		st.Pages-1)

	// Crash mid-flight and recover.
	if err := db.Sync(); err != nil {
		return err
	}
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "recovered: scanned %d ops, redone %d, skipped %d\n",
		rep.OpsScanned, rep.Redone, rep.SkippedInstalled+rep.SkippedUnexposed)

	tree2, err := btree.Open(eng, "accounts")
	if err != nil {
		return err
	}
	if err := tree2.Check(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		_, found, err := tree2.Get(key(i))
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("key %d lost in recovery", i)
		}
	}
	fmt.Fprintln(w, "tree verified: structure valid, all keys present")

	// Point operations keep working after recovery.
	if err := tree2.Insert([]byte("zzz-last"), []byte("after recovery")); err != nil {
		return err
	}
	v, found, err := tree2.Get([]byte("zzz-last"))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "post-recovery insert: found=%v value=%q\n", found, v)
	return nil
}

func key(i int) []byte { return []byte(fmt.Sprintf("acct-%06d", i)) }

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
