package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBTreeExample runs the demo end to end and checks the milestones it
// prints: the load completed, recovery replayed the log, the recovered tree
// passed its structural check with every key present, and the tree accepted
// writes afterwards.  Counts and byte totals are deliberately not pinned.
func TestBTreeExample(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("example failed: %v\n output so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"loaded 1000 keys",
		"recovered: scanned",
		"tree verified: structure valid, all keys present",
		`post-recovery insert: found=true value="after recovery"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
