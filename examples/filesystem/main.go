// Filesystem example: the paper's Section 1 file-system scenario built
// purely on the public API — copy and sort as logical operations whose log
// records carry only file ids, compared live against the physiological
// equivalent that must log whole files.
package main

import (
	"fmt"
	"log"
	"sort"

	"logicallog"
)

func main() {
	db, err := logicallog.Open(logicallog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// File operations as registered transformations.  "copy" and "sortf"
	// are B-form logical operations (X <- g(Y)): they read the source file
	// and write the target, and the engine re-reads the source at replay
	// time instead of logging values.
	db.RegisterFunc("copy", func(params []byte, reads map[string][]byte) (map[string][]byte, error) {
		src, dst := string(params[:len(params)/2]), string(params[len(params)/2:])
		return map[string][]byte{dst: append([]byte(nil), reads[src]...)}, nil
	})
	db.RegisterFunc("sortf", func(params []byte, reads map[string][]byte) (map[string][]byte, error) {
		src, dst := string(params[:len(params)/2]), string(params[len(params)/2:])
		out := append([]byte(nil), reads[src]...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return map[string][]byte{dst: out}, nil
	})

	// A 1 MiB "file".
	const size = 1 << 20
	contents := make([]byte, size)
	for i := range contents {
		contents[i] = byte(255 - i%251)
	}
	must(db.Create("data.bin", contents))
	baseline := db.Stats().LogBytesAppended

	// Logical copy + sort: two log records of a few dozen bytes.
	must(db.ApplyLogical("copy", []byte("data.bindata.cpy"), []string{"data.bin"}, []string{"data.cpy"}))
	must(db.ApplyLogical("sortf", []byte("data.bindata.srt"), []string{"data.bin"}, []string{"data.srt"}))
	logicalCost := db.Stats().LogBytesAppended - baseline

	// Physiological equivalents: Set logs the whole 1 MiB value, twice.
	cpy, _ := db.Get("data.cpy")
	srt, _ := db.Get("data.srt")
	must(db.Set("data.cpy2", cpy))
	must(db.Set("data.srt2", srt))
	physioCost := db.Stats().LogBytesAppended - baseline - logicalCost

	fmt.Printf("copy+sort of a 1 MiB file:\n")
	fmt.Printf("  logical logging:       %8d log bytes\n", logicalCost)
	fmt.Printf("  physiological logging: %8d log bytes (%.0fx more)\n",
		physioCost, float64(physioCost)/float64(logicalCost))

	// Crash and recover: the logical operations replay by re-reading
	// data.bin from the recovering database.
	must(db.Sync())
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered (%d ops replayed)\n", rep.Redone)

	got, err := db.Get("data.srt")
	if err != nil {
		log.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		log.Fatal("recovered sort output is not sorted")
	}
	fmt.Println("recovered data.srt is intact and sorted")

	// Transient files: delete the temporaries; after installation their
	// operations never need redo again (Section 5's optimization).
	must(db.Delete("data.cpy", "data.cpy2", "data.srt2"))
	must(db.Flush())
	must(db.Checkpoint())
	fmt.Println("temporaries deleted; log truncated past their operations")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
