package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestLSMExample runs the demo end to end and checks the milestones it
// prints: the load completed, recovery replayed the log, the recovered tree
// passed its checks with overwrites and tombstones honored, the range scan
// saw the expected live keys, and the tree accepted writes afterwards.
// Counts that depend on flush/compaction timing are deliberately not pinned.
func TestLSMExample(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("example failed: %v\n output so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"loaded 300 keys",
		"recovered: scanned",
		"tree verified: structure valid, all live keys present, tombstones honored",
		"range scan [evt-0100, evt-0120): 18 live keys",
		`post-recovery put: found=true value="after recovery"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
