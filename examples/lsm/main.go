// LSM example: a recoverable log-structured merge tree whose memtable
// flushes and multi-table compactions are single logical operations.  The
// SSTables an operation rewrites are named in its read and write sets, never
// copied into the log — the paper's multi-page reorganization made cheap.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"logicallog"
	"logicallog/internal/lsm"
)

func run(w io.Writer) error {
	db, err := logicallog.Open(logicallog.DefaultOptions())
	if err != nil {
		return err
	}
	defer db.Close()
	eng := db.Engine()
	lsm.Register(eng.Registry())

	// A small flush threshold and fanout so the demo exercises flushes and
	// compactions with a few hundred operations.
	kv, err := lsm.New(eng, "events", lsm.Options{FlushThreshold: 16, Fanout: 4})
	if err != nil {
		return err
	}

	// Load 300 keys, overwrite a third of them, and delete every tenth:
	// the automatic maintenance flushes full memtables into SSTables and
	// compacts the table set whenever it outgrows the fanout.
	const n = 300
	for i := 0; i < n; i++ {
		if err := kv.Put(key(i), []byte(fmt.Sprintf("v1-%04d", i))); err != nil {
			return err
		}
		if i%100 == 99 {
			if err := db.FlushOne(); err != nil {
				return err
			}
		}
	}
	for i := 0; i < n; i += 3 {
		if err := kv.Put(key(i), []byte(fmt.Sprintf("v2-%04d", i))); err != nil {
			return err
		}
	}
	deleted := make(map[int]bool)
	for i := 0; i < n; i += 10 {
		if _, err := kv.Delete(key(i)); err != nil {
			return err
		}
		deleted[i] = true
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}

	st, err := kv.Stats()
	if err != nil {
		return err
	}
	dbStats := db.Stats()
	fmt.Fprintf(w, "loaded %d keys (plus overwrites and deletes): %d memtable entries, %d tables holding %d entries, %d tombstones\n",
		n, st.MemEntries, st.Tables, st.TableEntries, st.Tombstones)
	fmt.Fprintf(w, "log: %d bytes appended; %d bytes were data values\n",
		dbStats.LogBytesAppended, dbStats.LogValueBytes)
	fmt.Fprintln(w, "(each flush and compaction was one logical record naming its tables — no SSTable contents were logged)")

	// Crash mid-flight and recover.
	if err := db.Sync(); err != nil {
		return err
	}
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "recovered: scanned %d ops, redone %d, skipped %d\n",
		rep.OpsScanned, rep.Redone, rep.SkippedInstalled+rep.SkippedUnexposed)

	kv2, err := lsm.Open(eng, "events", lsm.Options{FlushThreshold: 16, Fanout: 4})
	if err != nil {
		return err
	}
	if err := kv2.Check(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		v, found, err := kv2.Get(key(i))
		if err != nil {
			return err
		}
		if deleted[i] {
			if found {
				return fmt.Errorf("deleted key %d resurrected by recovery", i)
			}
			continue
		}
		if !found {
			return fmt.Errorf("key %d lost in recovery", i)
		}
		want := fmt.Sprintf("v1-%04d", i)
		if i%3 == 0 {
			want = fmt.Sprintf("v2-%04d", i)
		}
		if string(v) != want {
			return fmt.Errorf("key %d: got %q, want %q", i, v, want)
		}
	}
	fmt.Fprintln(w, "tree verified: structure valid, all live keys present, tombstones honored")

	// A range scan merges the memtable and every SSTable newest-first,
	// skipping tombstones.
	var scanned int
	if err := kv2.Range(key(100), key(120), func(k, v []byte) bool {
		scanned++
		return true
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "range scan [%s, %s): %d live keys\n", key(100), key(120), scanned)

	// Point operations keep working after recovery.
	if err := kv2.Put([]byte("zzz-last"), []byte("after recovery")); err != nil {
		return err
	}
	v, found, err := kv2.Get([]byte("zzz-last"))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "post-recovery put: found=%v value=%q\n", found, v)
	return nil
}

func key(i int) []byte { return []byte(fmt.Sprintf("evt-%04d", i)) }

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
