// Quickstart: the public logicallog API in one sitting — create objects,
// apply a logical operation (nothing but ids on the log), crash, recover.
package main

import (
	"fmt"
	"log"

	"logicallog"
)

func main() {
	db, err := logicallog.Open(logicallog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A deterministic transformation: recovery may re-execute it, so it
	// must be a pure function of (params, reads).
	db.RegisterFunc("greet", func(params []byte, reads map[string][]byte) (map[string][]byte, error) {
		msg := append(append([]byte{}, reads["name"]...), params...)
		return map[string][]byte{"greeting": msg}, nil
	})

	must(db.Create("name", []byte("Dave")))

	// A logical operation: reads "name", writes "greeting".  The log
	// records only the function name, params, and the two object ids —
	// never the values.
	must(db.ApplyLogical("greet", []byte(", I'm afraid I can do that"), []string{"name"}, []string{"greeting"}))

	before := db.Stats()
	fmt.Printf("log so far: %d bytes appended, only %d of them data values\n",
		before.LogBytesAppended, before.LogValueBytes)

	// Make the log durable, then simulate a crash: all volatile state
	// (cache, write graph) is gone.
	must(db.Sync())
	db.Crash()

	rep, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery replayed %d operations (scanned %d)\n", rep.Redone, rep.OpsScanned)

	v, err := db.Get("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered greeting: %s\n", v)

	// Install everything into the stable store and checkpoint.
	must(db.Flush())
	must(db.Checkpoint())
	fmt.Println("flushed and checkpointed; a second recovery would redo nothing")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
