// Benchmarks regenerating every paper artifact (one Benchmark per
// experiment in DESIGN.md's index).  Run with
//
//	go test -bench=. -benchmem
//
// Custom metrics carry the experiment's headline numbers: log-bytes/op,
// redone-ops/recovery, flush-set sizes, object writes.  cmd/llbench renders
// the same experiments as full tables.
package logicallog

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"logicallog/internal/apprec"
	"logicallog/internal/btree"
	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/fsim"
	"logicallog/internal/harness"
	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/ship"
	"logicallog/internal/sim"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
	"logicallog/internal/workload"
	"logicallog/internal/writegraph"
)

func mustEngine(b *testing.B, opts core.Options) *core.Engine {
	b.Helper()
	eng, err := core.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkE1LogBytes — Figure 1: log bytes for an A-form + B-form pair,
// logical vs physiological, per object size.
func BenchmarkE1LogBytes(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		for _, physio := range []bool{false, true} {
			name := fmt.Sprintf("size=%s/physio=%v", fmtBytes(size), physio)
			b.Run(name, func(b *testing.B) {
				opts := core.DefaultOptions()
				opts.Physiological = physio
				eng := mustEngine(b, opts)
				v := make([]byte, size)
				if err := eng.Execute(op.NewCreate("X", v)); err != nil {
					b.Fatal(err)
				}
				if err := eng.Execute(op.NewCreate("Y", v)); err != nil {
					b.Fatal(err)
				}
				eng.ResetStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a := op.NewLogical(op.FuncXor, op.EncodeParams([]byte("Y"), []byte("X")),
						[]op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"})
					bb := op.NewLogical(op.FuncCopy, []byte("X"),
						[]op.ObjectID{"Y"}, []op.ObjectID{"X"})
					if err := eng.Execute(a); err != nil {
						b.Fatal(err)
					}
					if err := eng.Execute(bb); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := eng.Log().Stats()
				b.ReportMetric(float64(st.TotalOpPayloadBytes())/float64(b.N), "logbytes/pair")
			})
		}
	}
}

// BenchmarkE2Recover — Figure 2 / Theorem 2: a full crash + recover +
// verify cycle per iteration.
func BenchmarkE2Recover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := sim.CrashTest(core.DefaultOptions(), sim.DefaultScenario(int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3FlushSets — Figures 3/7: write-graph maintenance cost and
// resulting flush-set sizes for W vs rW.
func BenchmarkE3FlushSets(b *testing.B) {
	spec := workload.DefaultSpec(33)
	spec.PhysioPct, spec.DeletePct = 0, 0
	spec.LogicalAPct, spec.LogicalBPct = 40, 40
	gen, err := workload.NewGenerator(spec)
	if err != nil {
		b.Fatal(err)
	}
	stream := workload.WithLSNs(gen.Stream())
	for _, policy := range []writegraph.Policy{writegraph.PolicyW, writegraph.PolicyRW} {
		b.Run(policy.String(), func(b *testing.B) {
			var maxSet int
			for i := 0; i < b.N; i++ {
				wg := writegraph.New(policy)
				for _, o := range stream {
					if _, err := wg.AddOp(o.Clone()); err != nil {
						b.Fatal(err)
					}
				}
				for _, s := range wg.FlushSetSizes() {
					if s > maxSet {
						maxSet = s
					}
				}
			}
			b.ReportMetric(float64(maxSet), "max-flush-set")
		})
	}
}

// BenchmarkE4Refinement — Figure 5 / Section 4 examples through both
// graphs, per iteration.
func BenchmarkE4Refinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, policy := range []writegraph.Policy{writegraph.PolicyW, writegraph.PolicyRW} {
			wg := writegraph.New(policy)
			ops := []*op.Operation{
				op.NewLogical(op.FuncXor, op.EncodeParams([]byte("Y"), []byte("X")),
					[]op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"}),
				op.NewLogical(op.FuncCopy, []byte("X"), []op.ObjectID{"Y"}, []op.ObjectID{"X"}),
				op.NewPhysioWrite("Y", op.FuncAppend, []byte{1}),
			}
			for j, o := range ops {
				o.LSN = op.SI(j + 1)
				if _, err := wg.AddOp(o); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkE5IdentityVsFlushTxn — Section 4: installing a k-object atomic
// flush set under each mechanism.
func BenchmarkE5IdentityVsFlushTxn(b *testing.B) {
	for _, k := range []int{2, 8} {
		for _, strat := range []cache.FlushStrategy{cache.StrategyIdentityWrite, cache.StrategyFlushTxn, cache.StrategyShadow} {
			b.Run(fmt.Sprintf("k=%d/%s", k, strat), func(b *testing.B) {
				var objWrites int64
				for i := 0; i < b.N; i++ {
					opts := core.DefaultOptions()
					opts.Strategy = strat
					eng := mustEngine(b, opts)
					if err := buildRing(eng, k, 4096); err != nil {
						b.Fatal(err)
					}
					eng.ResetStats()
					if err := eng.FlushAll(); err != nil {
						b.Fatal(err)
					}
					objWrites += eng.Store().Stats().ObjectWrites
				}
				b.ReportMetric(float64(objWrites)/float64(b.N), "objwrites/install")
			})
		}
	}
}

func buildRing(eng *core.Engine, k, valSize int) error {
	ids := make([]op.ObjectID, k)
	v := make([]byte, valSize)
	for i := range ids {
		ids[i] = op.ObjectID(fmt.Sprintf("s%02d", i))
		if err := eng.Execute(op.NewCreate(ids[i], v)); err != nil {
			return err
		}
	}
	if err := eng.FlushAll(); err != nil {
		return err
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < k; i++ {
			x, y := ids[i], ids[(i+1)%k]
			o := op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)),
				[]op.ObjectID{x, y}, []op.ObjectID{y})
			if err := eng.Execute(o); err != nil {
				return err
			}
		}
	}
	return nil
}

// BenchmarkE6RedoTests — Section 5: recovery under the vSI vs generalized
// rSI REDO tests; the metric is operations re-executed per recovery.
func BenchmarkE6RedoTests(b *testing.B) {
	for _, test := range []recovery.RedoTest{recovery.TestVSI, recovery.TestRSI} {
		b.Run(test.String(), func(b *testing.B) {
			var redone int64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.RedoTest = test
				eng := mustEngine(b, opts)
				spec := workload.DefaultSpec(77)
				spec.LogicalAPct, spec.LogicalBPct, spec.PhysioPct, spec.DeletePct = 25, 25, 10, 30
				gen, err := workload.NewGenerator(spec)
				if err != nil {
					b.Fatal(err)
				}
				for j, o := range gen.Stream() {
					if err := eng.Execute(o); err != nil {
						b.Fatal(err)
					}
					if j%9 == 0 {
						if err := eng.InstallOne(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := eng.Log().Force(); err != nil {
					b.Fatal(err)
				}
				eng.Crash()
				res, err := eng.Recover()
				if err != nil {
					b.Fatal(err)
				}
				redone += int64(res.Redone)
			}
			b.ReportMetric(float64(redone)/float64(b.N), "redone/recovery")
		})
	}
}

// BenchmarkE7AppRecovery — Table 1 / application recovery: one
// read+exec+write round, logical W_L vs physical W_P vs physiological.
func BenchmarkE7AppRecovery(b *testing.B) {
	const bufSize = 64 << 10
	variants := []struct {
		name   string
		physio bool
		physW  bool
	}{
		{"W_L-logical", false, false},
		{"W_P-physical", false, true},
		{"physiological", true, false},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Physiological = v.physio
			eng := mustEngine(b, opts)
			apprec.Register(eng.Registry())
			if err := eng.Execute(op.NewCreate("input", make([]byte, bufSize))); err != nil {
				b.Fatal(err)
			}
			app, err := apprec.Launch(eng, "app")
			if err != nil {
				b.Fatal(err)
			}
			eng.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := app.Read("input"); err != nil {
					b.Fatal(err)
				}
				if err := app.Step([]byte{byte(i)}); err != nil {
					b.Fatal(err)
				}
				target := op.ObjectID(fmt.Sprintf("out%d", i))
				if v.physW {
					err = app.WritePhysical(target)
				} else {
					err = app.Write(target)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(eng.Log().Stats().TotalOpPayloadBytes())/float64(b.N), "logbytes/round")
		})
	}
}

// BenchmarkE8FileOps — file-system domain: logical vs physiological copy of
// a 256 KiB file.
func BenchmarkE8FileOps(b *testing.B) {
	const size = 256 << 10
	for _, physical := range []bool{false, true} {
		name := "logical"
		if physical {
			name = "physiological"
		}
		b.Run(name, func(b *testing.B) {
			eng := mustEngine(b, core.DefaultOptions())
			fsim.Register(eng.Registry())
			fs := fsim.New(eng, "fs")
			if err := fs.Create("src", make([]byte, size)); err != nil {
				b.Fatal(err)
			}
			eng.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst := fmt.Sprintf("copy%d", i)
				var err error
				if physical {
					err = fs.CopyPhysical(dst, "src")
				} else {
					err = fs.Copy(dst, "src")
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(eng.Log().Stats().TotalOpPayloadBytes())/float64(b.N), "logbytes/copy")
		})
	}
}

// BenchmarkE9BtreeSplit — database domain: bulk inserts with logical vs
// physiological splits.
func BenchmarkE9BtreeSplit(b *testing.B) {
	for _, physio := range []bool{false, true} {
		name := "logical-split"
		if physio {
			name = "physiological-split"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Physiological = physio
			var logBytes int64
			inserts := 0
			for i := 0; i < b.N; i++ {
				eng := mustEngine(b, opts)
				btree.Register(eng.Registry())
				tree, err := btree.New(eng, "t", 16)
				if err != nil {
					b.Fatal(err)
				}
				eng.ResetStats()
				val := make([]byte, 1024)
				for j := 0; j < 128; j++ {
					if err := tree.Insert([]byte(fmt.Sprintf("key%06d", j)), val); err != nil {
						b.Fatal(err)
					}
					inserts++
				}
				logBytes += eng.Log().Stats().TotalOpPayloadBytes()
			}
			b.ReportMetric(float64(logBytes)/float64(inserts), "logbytes/insert")
		})
	}
}

// BenchmarkE10ScanLength — Section 5: recovery after a checkpointed
// workload; the metric is redo-scan length.
func BenchmarkE10ScanLength(b *testing.B) {
	for _, interval := range []int{0, 25} {
		name := "nocheckpoint"
		if interval > 0 {
			name = fmt.Sprintf("checkpoint-every-%d", interval)
		}
		b.Run(name, func(b *testing.B) {
			var scanned int64
			for i := 0; i < b.N; i++ {
				eng := mustEngine(b, core.DefaultOptions())
				gen, err := workload.NewGenerator(workload.DefaultSpec(55))
				if err != nil {
					b.Fatal(err)
				}
				for j, o := range gen.Stream() {
					if err := eng.Execute(o); err != nil {
						b.Fatal(err)
					}
					if j%7 == 0 {
						if err := eng.InstallOne(); err != nil {
							b.Fatal(err)
						}
					}
					if interval > 0 && j%interval == interval-1 {
						if err := eng.Checkpoint(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := eng.Log().Force(); err != nil {
					b.Fatal(err)
				}
				eng.Crash()
				res, err := eng.Recover()
				if err != nil {
					b.Fatal(err)
				}
				scanned += int64(res.ScannedOps)
			}
			b.ReportMetric(float64(scanned)/float64(b.N), "scanned/recovery")
		})
	}
}

// BenchmarkE11ShipLag — log shipping: a 400-op workload streamed to a warm
// standby one batch per step, then failover.  Headline metrics are peak
// replication lag (records) and promotion time per failover.
func BenchmarkE11ShipLag(b *testing.B) {
	for _, batch := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var peakLag, promoteNs int64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				eng := mustEngine(b, opts)
				sb, err := ship.NewStandby(ship.StandbyConfig{Opts: opts})
				if err != nil {
					b.Fatal(err)
				}
				s := ship.NewSender(eng.Log(), ship.NewLink(sb, nil), 1, ship.SenderConfig{BatchRecords: batch})
				gen, err := workload.NewGenerator(workload.DefaultSpec(77))
				if err != nil {
					b.Fatal(err)
				}
				for j, o := range gen.Stream() {
					if err := eng.Execute(o); err != nil {
						b.Fatal(err)
					}
					if j%3 == 2 {
						if err := eng.Log().Force(); err != nil {
							b.Fatal(err)
						}
					}
					if j%11 == 7 {
						if err := eng.InstallOne(); err != nil {
							b.Fatal(err)
						}
					}
					if _, lagRecords := s.Lag(); lagRecords > peakLag {
						peakLag = lagRecords
					}
					if _, err := s.Pump(); err != nil {
						b.Fatal(err)
					}
				}
				if err := eng.Log().Force(); err != nil {
					b.Fatal(err)
				}
				if err := s.Sync(); err != nil {
					b.Fatal(err)
				}
				eng.Crash()
				start := time.Now()
				if _, _, err := sb.Promote(); err != nil {
					b.Fatal(err)
				}
				promoteNs += time.Since(start).Nanoseconds()
				s.Close()
			}
			b.ReportMetric(float64(peakLag), "peaklag-records")
			b.ReportMetric(float64(promoteNs)/float64(b.N)/1e6, "promote-ms")
		})
	}
}

// buildParallelRedoLog appends objects × opsPerObject update operations to
// a fresh forced log (round-robin across objects, so dependency chains
// interleave in log order exactly as concurrent writers would produce them)
// with nothing installed since the baseline versions: recovery must fault
// every object and redo every operation.
func buildParallelRedoLog(b *testing.B, objects, opsPerObject int) *wal.Log {
	b.Helper()
	l, err := wal.New(wal.NewMemDevice())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < opsPerObject; i++ {
		for j := 0; j < objects; j++ {
			x := op.ObjectID(fmt.Sprintf("chain%03d", j))
			if _, err := l.AppendOp(op.NewPhysioWrite(x, op.FuncAppend, []byte{byte(i), byte(j)})); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := l.Force(); err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkE8ParallelRedo — parallel redo scalability: one 10240-operation
// log of 512 independent dependency chains over a disk-backed stable store
// (300µs simulated read latency), recovered with 1/2/4/8 workers.  The win
// parallel redo buys is overlapping the per-chain fault latency; every
// worker count must produce identical Result counters.  Headline metric is
// redoops/sec.
func BenchmarkE8ParallelRedo(b *testing.B) {
	const (
		objects      = 512
		opsPerObject = 20 // 10240 ops total
		valSize      = 256
		readDelay    = 300 * time.Microsecond
	)
	log := buildParallelRedoLog(b, objects, opsPerObject)
	snap := make(map[op.ObjectID]stable.Versioned, objects)
	val := make([]byte, valSize)
	for j := 0; j < objects; j++ {
		snap[op.ObjectID(fmt.Sprintf("chain%03d", j))] = stable.Versioned{Val: val}
	}
	store := stable.NewStore()
	store.Restore(snap) // recovery never writes the store, so one instance serves every run
	store.SetReadDelay(readDelay)
	cfg := cache.Config{
		Policy:      writegraph.PolicyRW,
		Strategy:    cache.StrategyIdentityWrite,
		LogInstalls: true,
		Registry:    op.NewRegistry(),
	}
	recoverObs := func(workers int, reg *obs.Registry, tracer *obs.Tracer, fl *flight.Recorder) *recovery.Result {
		c := cfg
		c.Obs = reg
		res, err := recovery.Recover(log, store, recovery.Options{
			Test:        recovery.TestRSI,
			Cache:       c,
			RedoWorkers: workers,
			Obs:         reg,
			Tracer:      tracer,
			Flight:      fl,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	recoverOnce := func(workers int) *recovery.Result {
		return recoverObs(workers, nil, nil, nil)
	}
	base := recoverOnce(1)
	if base.Redone != objects*opsPerObject {
		b.Fatalf("serial baseline redid %d ops, want %d", base.Redone, objects*opsPerObject)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			res := recoverOnce(workers)
			if res.Redone != base.Redone || res.ScannedOps != base.ScannedOps ||
				res.SkippedInstalled != base.SkippedInstalled ||
				res.SkippedUnexposed != base.SkippedUnexposed || res.Voided != base.Voided {
				b.Fatalf("workers=%d: counters diverged from serial: %+v vs %+v", workers, res, base)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recoverOnce(workers)
			}
			b.ReportMetric(float64(base.ScannedOps)*float64(b.N)/b.Elapsed().Seconds(), "redoops/sec")
		})
	}
	// Fully instrumented variant: metrics registry + span tracer attached.
	// Comparing against workers=8 above measures the observability tax
	// (DESIGN.md budgets it at under 5%); the plain runs measure the
	// disabled cost, which is a nil check per hook.
	b.Run("workers=8/obs", func(b *testing.B) {
		reg := obs.NewRegistry()
		res := recoverObs(8, reg, obs.NewTracer(), nil)
		if res.Redone != base.Redone {
			b.Fatalf("instrumented run redid %d ops, want %d", res.Redone, base.Redone)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recoverObs(8, reg, obs.NewTracer(), nil)
		}
		b.ReportMetric(float64(base.ScannedOps)*float64(b.N)/b.Elapsed().Seconds(), "redoops/sec")
	})
	// Flight-recorder variant: one decision event per scanned op into the
	// lock-free ring (no spill).  Comparing against workers=8 above measures
	// the provenance tax (DESIGN.md budgets it at under 3%); the plain runs
	// already pay the disabled cost, a nil check per decision site.
	b.Run("workers=8/flight", func(b *testing.B) {
		fl := flight.NewRecorder(flight.DefaultRingSize)
		res := recoverObs(8, nil, nil, fl)
		if res.Redone != base.Redone {
			b.Fatalf("flight run redid %d ops, want %d", res.Redone, base.Redone)
		}
		if events, _, _ := fl.Counters(); events == 0 {
			b.Fatal("flight recorder saw no decision events")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recoverObs(8, nil, nil, fl)
		}
		b.ReportMetric(float64(base.ScannedOps)*float64(b.N)/b.Elapsed().Seconds(), "redoops/sec")
	})
}

// BenchmarkE12CommitStreams — E12: the commit-path fast lane.  Eight
// committers drive a write-burst mix (3/4 blind hot-key writes — the
// absorbable slice — and 1/4 cold per-committer writes, group commit every
// 16 appends) against a wal.Log across the lane matrix.  The headline
// comparison is the full fast lane (streams=4, absorption on) against the
// single-lane baseline (streams=1, absorption off): ≥1.5x appends/sec on
// this mix, with elidedB/op > 0 proving absorption fired.  The absorb=false
// rows isolate pure stream scaling, which needs real cores to show — on a
// single-CPU host the fast lane's whole win comes from absorption eliding
// merge and device work, and the stream rows read as noise.
func BenchmarkE12CommitStreams(b *testing.B) {
	const (
		committers = 8
		hotKeys    = 4
		coldKeys   = 64
		valSize    = 256
		forceEvery = 16
	)
	hot := make([]op.ObjectID, hotKeys)
	for i := range hot {
		hot[i] = op.ObjectID(fmt.Sprintf("hot%d", i))
	}
	for _, cfg := range []struct {
		streams int
		absorb  bool
	}{{1, false}, {2, false}, {4, false}, {8, false}, {1, true}, {4, true}, {8, true}} {
		b.Run(fmt.Sprintf("streams=%d/absorb=%v", cfg.streams, cfg.absorb), func(b *testing.B) {
			l, err := wal.New(wal.NewMemDevice())
			if err != nil {
				b.Fatal(err)
			}
			l.SetStreams(cfg.streams, cfg.absorb)
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < committers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					cold := make([]op.ObjectID, coldKeys)
					for i := range cold {
						cold[i] = op.ObjectID(fmt.Sprintf("g%d-c%d", c, i))
					}
					val := make([]byte, valSize)
					var last op.SI
					for i := 0; i < b.N; i++ {
						key := hot[(i+c)%hotKeys]
						if i%4 == 3 {
							key = cold[i%coldKeys]
						}
						val[0], val[1] = byte(i), byte(c)
						lsn, err := l.AppendOp(op.NewPhysicalWrite(key, val))
						if err != nil {
							b.Error(err)
							return
						}
						last = lsn
						if i%forceEvery == forceEvery-1 {
							if err := l.ForceThrough(last); err != nil {
								b.Error(err)
								return
							}
						}
					}
				}(c)
			}
			wg.Wait()
			if err := l.Force(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := l.Stats()
			total := float64(committers) * float64(b.N)
			b.ReportMetric(total/b.Elapsed().Seconds(), "appends/sec")
			b.ReportMetric(float64(st.BytesElided)/total, "elidedB/op")
			b.ReportMetric(float64(st.Absorbed)/total, "absorbed-frac")
		})
	}
}

// BenchmarkAblationInstallLogging — A1: redo work with and without install
// records.
func BenchmarkAblationInstallLogging(b *testing.B) {
	for _, logInstalls := range []bool{true, false} {
		b.Run(fmt.Sprintf("installrecords=%v", logInstalls), func(b *testing.B) {
			var redone int64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.LogInstalls = logInstalls
				eng := mustEngine(b, opts)
				gen, err := workload.NewGenerator(workload.DefaultSpec(99))
				if err != nil {
					b.Fatal(err)
				}
				for j, o := range gen.Stream() {
					if err := eng.Execute(o); err != nil {
						b.Fatal(err)
					}
					if j%9 == 0 {
						if err := eng.InstallOne(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := eng.Log().Force(); err != nil {
					b.Fatal(err)
				}
				eng.Crash()
				res, err := eng.Recover()
				if err != nil {
					b.Fatal(err)
				}
				redone += int64(res.Redone)
			}
			b.ReportMetric(float64(redone)/float64(b.N), "redone/recovery")
		})
	}
}

// BenchmarkAblationPolicy — A2: end-to-end engine throughput under W vs rW.
func BenchmarkAblationPolicy(b *testing.B) {
	for _, policy := range []writegraph.Policy{writegraph.PolicyW, writegraph.PolicyRW} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.Policy = policy
				if policy == writegraph.PolicyW {
					opts.Strategy = cache.StrategyShadow
				}
				eng := mustEngine(b, opts)
				gen, err := workload.NewGenerator(workload.DefaultSpec(111))
				if err != nil {
					b.Fatal(err)
				}
				for j, o := range gen.Stream() {
					if err := eng.Execute(o); err != nil {
						b.Fatal(err)
					}
					if j%9 == 0 {
						if err := eng.InstallOne(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := eng.FlushAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTables regenerates every experiment table once per iteration —
// the exact artifact set EXPERIMENTS.md records.
func BenchmarkTables(b *testing.B) {
	for _, exp := range harness.All() {
		if exp.ID == "E2" {
			continue // E2 runs 200 crash tests; benchmarked via BenchmarkE2Recover
		}
		exp := exp
		b.Run(exp.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
