module logicallog

go 1.22
